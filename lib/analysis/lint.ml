(* Dataflow-backed lints (A4xx), surfaced through [Diag] with deterministic
   sorted output.

   A401  dead store: a [StoreLoc] whose local is read on no feasible path
   A402  always-null read: a [LoadLoc] of a must-assigned local that is
         statically null on every feasible path
   A403  constant-foldable expression: a [BinOp]/[UnOp]/[Cast] whose result
         the analysis folded to a constant
   A404  unreachable by dataflow: a block the CFG reaches but feasible-edge
         pruning proves dead (CFG-unreachable blocks are the verifier's
         V109, not repeated here)

   All A4xx are warnings: none describe code the verifier would reject, only
   code the typed translator will quietly optimize. *)

module I = Hhbc.Instr
module F = Hhbc.Func

let lint_func (f : F.t) (s : Dataflow.summary) =
  let diags = ref [] in
  let warn ?pc code msg = diags := Diag.warning ~fid:f.F.id ?pc code msg :: !diags in
  if s.Dataflow.converged then begin
    let n = Array.length f.F.body in
    (* CFG reachability (ignoring feasibility), to report A404 only where
       the verifier's V109 stays silent *)
    let nb = Array.length s.Dataflow.blocks in
    let cfg_reach = Array.make (max 1 nb) false in
    if nb > 0 then begin
      let rec visit b =
        if b >= 0 && b < nb && not cfg_reach.(b) then begin
          cfg_reach.(b) <- true;
          List.iter visit s.Dataflow.blocks.(b).F.succs
        end
      in
      visit 0
    end;
    for pc = 0 to n - 1 do
      let b = F.block_of_instr s.Dataflow.blocks pc in
      if s.Dataflow.reach.(b) then begin
        (match f.F.body.(pc) with
        | I.StoreLoc l when s.Dataflow.dead_store.(pc) ->
          warn ~pc "A401"
            (Printf.sprintf "function %s: store to local %d is dead (never read)"
               f.F.name l)
        | I.LoadLoc l
          when (not s.Dataflow.undef_read.(pc))
               && Dataflow.Absval.equal s.Dataflow.pushed.(pc)
                    (Dataflow.Absval.Const Hhbc.Value.Null) ->
          warn ~pc "A402"
            (Printf.sprintf "function %s: local %d is always null here" f.F.name l)
        | I.BinOp _ | I.UnOp _ | I.Cast _ -> (
          match s.Dataflow.pushed.(pc) with
          | Dataflow.Absval.Const _ ->
            warn ~pc "A403"
              (Printf.sprintf "function %s: expression folds to a constant (%s)"
                 f.F.name
                 (Dataflow.Absval.to_string s.Dataflow.pushed.(pc)))
          | _ -> ())
        | _ -> ())
      end
    done;
    for b = 0 to nb - 1 do
      if cfg_reach.(b) && not s.Dataflow.reach.(b) then
        warn ~pc:s.Dataflow.blocks.(b).F.start "A404"
          (Printf.sprintf "function %s: block b%d is unreachable by dataflow"
             f.F.name b)
    done
  end;
  List.rev !diags

(* Per-function entry point used by the [analyze] CLIs: the verifier's
   diagnostics plus — when the body has no verifier errors, so the facts
   mean something — the dataflow lints. *)
let check_func repo (f : F.t) =
  let vdiags = Verify.check_func repo f in
  let diags =
    if Diag.errors vdiags = [] then vdiags @ lint_func f (Dataflow.analyze repo f)
    else vdiags
  in
  Diag.sort diags

let check repo =
  Diag.sort
    (List.concat_map
       (fun f -> check_func repo f)
       (Array.to_list repo.Hhbc.Repo.funcs))
