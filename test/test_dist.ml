(* The distribution layer: the Js_util.Backoff-driven fetch ladder at micro
   level (Jumpstart.Dist_store wrapping a Store) and macro level
   (Cluster.Dist_net carrying Server.packages for the fleet). *)

module JS = Jumpstart
module DS = JS.Dist_store
module DN = Cluster.Dist_net
module R = Js_util.Rng
module Req = Workload.Request

let app = lazy (Workload.Codegen.generate Workload.App_spec.tiny)

let traffic ?(seed = 1) ?(n = 200) () =
  let a = Lazy.force app in
  let mix = Req.mix a ~region:0 ~bucket:0 in
  fun engine ->
    let rng = R.create seed in
    for _ = 1 to n do
      ignore (Req.invoke engine a (Req.sample rng mix))
    done

let make_package () =
  let a = Lazy.force app in
  let options = { JS.Options.default with JS.Options.validate_packages = false } in
  match
    JS.Seeder.run a.Workload.Codegen.repo options ~profile_traffic:(traffic ~seed:1 ())
      ~optimized_traffic:(traffic ~seed:2 ()) ~region:0 ~bucket:3 ~seeder_id:7 ()
  with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "seeder failed: %s" msg

let seeded_store () =
  let outcome = make_package () in
  let store = JS.Store.create () in
  JS.Store.publish store ~region:0 ~bucket:3 outcome.JS.Seeder.bytes
    outcome.JS.Seeder.package.JS.Package.meta;
  store

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- micro: Dist_store --- *)

let test_neutral_passthrough () =
  (* an all-zero network must consume exactly the one selection draw Store
     itself performs, and deliver with zero delay *)
  let store = seeded_store () in
  let ds = DS.create store in
  Alcotest.(check bool) "inactive" false (DS.active ds);
  let rng = R.create 4 in
  let witness = R.copy rng in
  (match DS.fetch ds rng ~now:0. ~region:0 ~bucket:3 with
  | DS.Delivered { delay; region; _ } ->
    Alcotest.(check (float 0.)) "no delay" 0. delay;
    Alcotest.(check int) "home region" 0 region
  | _ -> Alcotest.fail "expected Delivered");
  ignore (JS.Store.pick_random store witness ~region:0 ~bucket:3);
  Alcotest.(check int64) "exactly one selection draw" (R.bits64 witness) (R.bits64 rng)

let test_unavailable_after_retries () =
  (* fail rate 1.0: every attempt fails, the ladder exhausts, the store is
     never reached *)
  let store = JS.Store.create () in
  let net = { DS.default_network with DS.fetch_fail_rate = 1.0 } in
  let ds = DS.create ~network:net store in
  match DS.fetch ds (R.create 1) ~now:0. ~region:0 ~bucket:3 with
  | DS.Unavailable { reason; _ } ->
    Alcotest.(check bool) "reason mentions failures" true (contains reason "failures")
  | _ -> Alcotest.fail "expected Unavailable"

let test_no_package_verdict () =
  (* an empty bucket on a healthy (but active) network is No_package, not
     Unavailable: nothing failed, there is just nothing to fetch *)
  let store = JS.Store.create () in
  let net = { DS.default_network with DS.stale_rate = 0.5 } in
  let ds = DS.create ~network:net store in
  Alcotest.(check bool) "active" true (DS.active ds);
  match DS.fetch ds (R.create 1) ~now:0. ~region:0 ~bucket:3 with
  | DS.No_package -> ()
  | _ -> Alcotest.fail "expected No_package"

let test_pinned_backoff_schedule () =
  (* fail rate 1.0 draws nothing (p >= 1), zero jitter draws nothing: the
     whole ladder is deterministic.  4 attempts with base 0.5 doubling wait
     0.5 + 1 + 2 between attempts = 3.5 s total, telemetry pins the counts
     and the clock advance. *)
  let store = JS.Store.create () in
  let net = { DS.default_network with DS.fetch_fail_rate = 1.0 } in
  let backoff =
    { Js_util.Backoff.default with
      Js_util.Backoff.max_attempts = 4;
      base_delay = 0.5;
      multiplier = 2.0;
      jitter = 0.
    }
  in
  let ds = DS.create ~network:net ~backoff store in
  let tel = Js_telemetry.create () in
  let rng = R.create 1 in
  let witness = R.copy rng in
  (match DS.fetch ~telemetry:tel ds rng ~now:0. ~region:0 ~bucket:3 with
  | DS.Unavailable { delay; _ } ->
    Alcotest.(check (float 1e-9)) "backoff sum 0.5+1+2" 3.5 delay
  | _ -> Alcotest.fail "expected Unavailable");
  Alcotest.(check int64) "no randomness consumed" (R.bits64 witness) (R.bits64 rng);
  Alcotest.(check int) "attempts" 4 (Js_telemetry.counter tel "dist.fetch_attempts");
  Alcotest.(check int) "failures" 4 (Js_telemetry.counter tel "dist.fetch_failures");
  Alcotest.(check (float 1e-9)) "clock advanced by the waits" 3.5
    (Js_telemetry.Clock.now (Js_telemetry.clock tel))

let test_fingerprint_gate () =
  let a = Lazy.force app in
  let other =
    Workload.Codegen.generate { Workload.App_spec.tiny with Workload.App_spec.seed = 43 }
  in
  Alcotest.(check bool) "distinct builds hash differently" true
    (Hhbc.Repo.fingerprint a.Workload.Codegen.repo
    <> Hhbc.Repo.fingerprint other.Workload.Codegen.repo);
  let store = seeded_store () in
  let ds = DS.create ~repo:other.Workload.Codegen.repo store in
  (match DS.fetch ds (R.create 1) ~now:0. ~region:0 ~bucket:3 with
  | DS.Rejected { reason; _ } ->
    Alcotest.(check bool) "mismatch reported" true (contains reason "fingerprint")
  | _ -> Alcotest.fail "expected Rejected");
  (* the matching build passes the gate *)
  let ds_ok = DS.create ~repo:a.Workload.Codegen.repo store in
  match DS.fetch ds_ok (R.create 1) ~now:0. ~region:0 ~bucket:3 with
  | DS.Delivered _ -> ()
  | _ -> Alcotest.fail "matching fingerprint must deliver"

let test_ttl_gate () =
  (* the seeder stamps published_at from ~now (default 0); past the TTL the
     gate rejects, inside it the same package delivers *)
  let store = seeded_store () in
  let ds = DS.create ~ttl_seconds:60. store in
  (match DS.fetch ds (R.create 1) ~now:120. ~region:0 ~bucket:3 with
  | DS.Rejected { reason; _ } ->
    Alcotest.(check bool) "expiry reported" true (contains reason "expired")
  | _ -> Alcotest.fail "expected Rejected");
  match DS.fetch ds (R.create 1) ~now:30. ~region:0 ~bucket:3 with
  | DS.Delivered _ -> ()
  | _ -> Alcotest.fail "fresh package must deliver"

let test_cross_region_fallback () =
  (* home region empty, region 1 holds the package: the ladder falls
     through to the foreign region and says so in telemetry *)
  let outcome = make_package () in
  let store = JS.Store.create () in
  JS.Store.publish store ~region:1 ~bucket:3 outcome.JS.Seeder.bytes
    outcome.JS.Seeder.package.JS.Package.meta;
  let ds = DS.create ~cross_region:true ~regions:[| 0; 1 |] store in
  let tel = Js_telemetry.create () in
  (match DS.fetch ~telemetry:tel ds (R.create 1) ~now:0. ~region:0 ~bucket:3 with
  | DS.Delivered { region; _ } -> Alcotest.(check int) "served by region 1" 1 region
  | _ -> Alcotest.fail "expected Delivered");
  Alcotest.(check int) "one cross-region fetch" 1 (Js_telemetry.counter tel "dist.cross_region")

let test_boot_dist_jump_starts () =
  let a = Lazy.force app in
  let store = seeded_store () in
  let ds = DS.create ~repo:a.Workload.Codegen.repo store in
  match
    JS.Consumer.boot_dist a.Workload.Codegen.repo JS.Options.default ds (R.create 2) ~region:0
      ~bucket:3 ~fallback_traffic:(traffic ~seed:9 ()) ()
  with
  | JS.Consumer.Jump_started _ -> ()
  | JS.Consumer.Fell_back (_, reason) -> Alcotest.failf "fell back: %s" reason

let test_boot_dist_degrades_gracefully () =
  (* an unreachable network must yield a working no-Jump-Start VM, not an
     error *)
  let a = Lazy.force app in
  let store = seeded_store () in
  let net = { DS.default_network with DS.fetch_fail_rate = 1.0 } in
  let ds = DS.create ~network:net store in
  match
    JS.Consumer.boot_dist a.Workload.Codegen.repo JS.Options.default ds (R.create 2) ~region:0
      ~bucket:3 ~fallback_traffic:(traffic ~seed:9 ()) ()
  with
  | JS.Consumer.Fell_back (vm, reason) ->
    Alcotest.(check bool) "reason names the fetch" true (contains reason "fetch failed");
    Alcotest.(check bool) "vm runs without a package" true (vm.JS.Consumer.package = None)
  | JS.Consumer.Jump_started _ -> Alcotest.fail "cannot jump-start without the network"

let test_boot_dist_stale_burns_attempts () =
  (* with salvage disabled, gate rejects feed the consumer's bounded-retry
     machinery: all attempts burn on stale packages, then the boot falls
     back (the salvage-on behaviour is covered in test_churn.ml) *)
  let a = Lazy.force app in
  let other =
    Workload.Codegen.generate { Workload.App_spec.tiny with Workload.App_spec.seed = 43 }
  in
  let store = seeded_store () in
  let ds = DS.create ~repo:other.Workload.Codegen.repo store in
  let tel = Js_telemetry.create () in
  let options = { JS.Options.default with JS.Options.salvage_stale = false } in
  match
    JS.Consumer.boot_dist ~telemetry:tel a.Workload.Codegen.repo options ds
      (R.create 2) ~region:0 ~bucket:3 ~fallback_traffic:(traffic ~seed:9 ()) ()
  with
  | JS.Consumer.Fell_back _ ->
    Alcotest.(check int) "every boot attempt burned" options.JS.Options.max_boot_attempts
      (Js_telemetry.counter tel "consumer.boot_attempts");
    Alcotest.(check bool) "gate rejects counted" true
      (Js_telemetry.counter tel "dist.stale_rejects" >= 1);
    Alcotest.(check int) "split counter attributes the kind"
      (Js_telemetry.counter tel "dist.stale_rejects")
      (Js_telemetry.counter tel "dist.fingerprint_mismatch")
  | JS.Consumer.Jump_started _ -> Alcotest.fail "stale packages must not jump-start"

(* --- macro: Dist_net --- *)

let macro_app = lazy (Workload.Macro_app.generate Workload.Macro_app.default_params)

let mk_server_pkg () =
  let cfg = Cluster.Server.default_config in
  Cluster.Server.make_package cfg (Lazy.force macro_app)
    ~coverage_target:cfg.Cluster.Server.profile_request_target ()

let test_net_neutral_draw_identity () =
  let net = DN.create DN.default_config in
  Alcotest.(check bool) "default inactive" false (DN.active DN.default_config);
  let rng = R.create 6 in
  let p0 = mk_server_pkg () and p1 = mk_server_pkg () and p2 = mk_server_pkg () in
  List.iter (fun p -> DN.publish net rng ~now:0. ~bucket:0 p) [ p0; p1; p2 ];
  (* publish prepends, so the replica order is newest-first *)
  let reference = [| p2; p1; p0 |] in
  let witness = R.copy rng in
  for _ = 1 to 20 do
    match DN.fetch net rng ~now:0. ~region:0 ~bucket:0 with
    | DN.Delivered (pkg, delay) ->
      Alcotest.(check (float 0.)) "no delay" 0. delay;
      Alcotest.(check bool) "draw-identical pick" true (pkg == R.pick witness reference)
    | _ -> Alcotest.fail "expected Delivered"
  done;
  Alcotest.(check int) "inactive network counts nothing" 0 (DN.counters net).DN.attempts

let test_net_counters_invariant () =
  let cfg =
    { DN.default_config with
      DN.regions = 2;
      fetch_fail_rate = 0.4;
      fetch_timeout = 1.0;
      fetch_latency_mean = 0.5;
      stale_rate = 0.2;
      cross_region = true
    }
  in
  let net = DN.create cfg in
  let rng = R.create 8 in
  DN.publish net rng ~now:0. ~bucket:0 (mk_server_pkg ());
  for _ = 1 to 200 do
    ignore (DN.fetch net rng ~now:0. ~region:0 ~bucket:0)
  done;
  let c = DN.counters net in
  Alcotest.(check bool) "faults occurred" true (c.DN.failures > 0 && c.DN.timeouts > 0);
  Alcotest.(check int) "attempts = deliveries + failures + timeouts + stale + empty"
    c.DN.attempts
    (c.DN.deliveries + c.DN.failures + c.DN.timeouts + c.DN.stale_rejects + c.DN.empty_probes)

let test_net_publish_latency_backoff () =
  (* replicas are invisible right after the push; the ladder's backoff waits
     long enough for replication (mean 0.1 s) to complete *)
  let cfg =
    { DN.default_config with
      DN.publish_latency_mean = 0.1;
      backoff = { Js_util.Backoff.default with Js_util.Backoff.jitter = 0. }
    }
  in
  let net = DN.create cfg in
  let rng = R.create 3 in
  DN.publish net rng ~now:0. ~bucket:0 (mk_server_pkg ());
  match DN.fetch net rng ~now:0. ~region:0 ~bucket:0 with
  | DN.Delivered (_, delay) ->
    Alcotest.(check bool) "waited at least one backoff step" true (delay >= 0.5);
    let c = DN.counters net in
    Alcotest.(check bool) "first probe found nothing" true (c.DN.empty_probes >= 1)
  | _ -> Alcotest.fail "expected Delivered after replication"

let test_net_not_found () =
  let cfg = { DN.default_config with DN.stale_rate = 0.5 } in
  let net = DN.create cfg in
  (match DN.fetch net (R.create 1) ~now:0. ~region:0 ~bucket:9 with
  | DN.Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found");
  Alcotest.(check int) "empty probe counted" 1 (DN.counters net).DN.empty_probes

let () =
  Alcotest.run "dist"
    [ ( "dist_store",
        [ Alcotest.test_case "neutral passthrough" `Quick test_neutral_passthrough;
          Alcotest.test_case "unavailable after retries" `Quick test_unavailable_after_retries;
          Alcotest.test_case "no-package verdict" `Quick test_no_package_verdict;
          Alcotest.test_case "pinned backoff schedule" `Quick test_pinned_backoff_schedule;
          Alcotest.test_case "fingerprint gate" `Quick test_fingerprint_gate;
          Alcotest.test_case "ttl gate" `Quick test_ttl_gate;
          Alcotest.test_case "cross-region fallback" `Quick test_cross_region_fallback
        ] );
      ( "boot",
        [ Alcotest.test_case "jump-starts through the network" `Quick test_boot_dist_jump_starts;
          Alcotest.test_case "degrades gracefully" `Quick test_boot_dist_degrades_gracefully;
          Alcotest.test_case "stale rejects burn attempts" `Quick
            test_boot_dist_stale_burns_attempts
        ] );
      ( "dist_net",
        [ Alcotest.test_case "neutral draw identity" `Quick test_net_neutral_draw_identity;
          Alcotest.test_case "counters invariant" `Quick test_net_counters_invariant;
          Alcotest.test_case "publish latency + backoff" `Quick test_net_publish_latency_backoff;
          Alcotest.test_case "not found" `Quick test_net_not_found
        ] )
    ]
