lib/util/pqueue.mli:
