(** Measured Vasm-level profile: what the Jump-Start seeders collect by
    instrumenting the optimized code (paper §V-A and §V-B).

    Accumulates, while instrumented optimized code "runs" (replay through
    {!Context}):
    - true execution counts per vasm block, including slow paths and
      per-inline-context callee behaviour;
    - true arc counts between vasm blocks;
    - the tier-2 call graph: calls between translations, i.e. with inlined
      calls already folded away — the accurate C3 input. *)

type t

val create : unit -> t

(** Handler to plug into {!Context.probes}. *)
val handler : t -> Context.handler

(** [block_weights t vfunc] — dense per-block measured counts (zeros for
    never-executed blocks). *)
val block_weights : t -> Vasm.Vfunc.t -> float array

(** [arc_weight t vfunc (src, dst)]. *)
val arc_weight : t -> Vasm.Vfunc.t -> int * int -> float

(** [to_cfg t vfunc] — layout-ready CFG under measured weights. *)
val to_cfg : t -> Vasm.Vfunc.t -> Layout.Cfg.t

(** Measured tier-2 call graph: [(caller_root, callee_root, count)].
    Entry calls (no caller translation) are excluded. *)
val call_graph : t -> (int * int * int) list

(** Function entry counts at tier 2 (translation entries, inlined bodies
    excluded). *)
val entry_count : t -> Hhbc.Instr.fid -> int

(** All profiled root functions with their per-block count vectors, sorted
    by fid (consistency-pass enumeration). *)
val profiled_blocks : t -> (int * float array) list

(** All profiled vasm arcs as [(root_fid, [(src, dst, weight)])], sorted. *)
val profiled_arcs : t -> (int * (int * int * float) list) list

(** All tier-2 entry counters as [(fid, count)], sorted. *)
val entry_counts : t -> (int * int) list

(** Binary serialization (the §IV-B category-3 section of a Jump-Start
    package).  [deserialize ~n_funcs] range-checks every function id against
    the consumer repo and raises {!Js_util.Binio.Corrupt}; block indices are
    only checkable against re-lowered translations, which is the
    {!Core.Package_check} consistency pass's job. *)
val serialize : t -> Js_util.Binio.Writer.t -> unit

val deserialize : ?n_funcs:int -> Js_util.Binio.Reader.t -> t

(** [remap t ~f] re-keys every root function id through [f], dropping
    entries that map to [None] (stale-profile salvage: only strict-identical
    function matches keep their vasm-level profile — block indices are
    carried verbatim and P310/P311 re-check them against re-lowered
    translations). *)
val remap : t -> f:(int -> int option) -> t
