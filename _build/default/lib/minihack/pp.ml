(* Precedence levels mirror Parser.precedence; parentheses are emitted
   whenever a child binds looser than its context requires. *)

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Concat -> "."
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.And -> "&&"
  | Ast.Or -> "||"
  | Ast.BitAnd -> "&"
  | Ast.BitOr -> "|"
  | Ast.BitXor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"

let prec = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.BitOr -> 3
  | Ast.BitXor -> 4
  | Ast.BitAnd -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Add | Ast.Sub | Ast.Concat -> 9
  | Ast.Mul | Ast.Div | Ast.Mod -> 10

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_expr_prec fmt ctx e =
  match e with
  | Ast.Int n -> if n < 0 then Format.fprintf fmt "(0 - %d)" (-n) else Format.fprintf fmt "%d" n
  | Ast.Float f ->
    if f < 0. then Format.fprintf fmt "(0.0 - %g)" (-.f)
    else if Float.is_integer f then Format.fprintf fmt "%.1f" f
    else Format.fprintf fmt "%g" f
  | Ast.Str s -> Format.fprintf fmt "\"%s\"" (escape s)
  | Ast.Bool true -> Format.fprintf fmt "true"
  | Ast.Bool false -> Format.fprintf fmt "false"
  | Ast.Null -> Format.fprintf fmt "null"
  | Ast.This -> Format.fprintf fmt "$this"
  | Ast.Var v -> Format.fprintf fmt "$%s" v
  | Ast.Binop (op, a, b) ->
    let p = prec op in
    let open_p = p < ctx in
    if open_p then Format.fprintf fmt "(";
    pp_expr_prec fmt p a;
    Format.fprintf fmt " %s " (binop_str op);
    pp_expr_prec fmt (p + 1) b;
    if open_p then Format.fprintf fmt ")"
  | Ast.Unop (Ast.Neg, a) ->
    Format.fprintf fmt "-";
    pp_expr_prec fmt 11 a
  | Ast.Unop (Ast.Not, a) ->
    Format.fprintf fmt "!";
    pp_expr_prec fmt 11 a
  | Ast.Call (name, args) -> pp_call fmt name args
  | Ast.MethodCall (recv, m, args) ->
    pp_expr_prec fmt 12 recv;
    Format.fprintf fmt "->%s" m;
    pp_args fmt args
  | Ast.PropGet (recv, p) ->
    pp_expr_prec fmt 12 recv;
    Format.fprintf fmt "->%s" p
  | Ast.New (c, []) -> Format.fprintf fmt "new %s()" c
  | Ast.New (c, args) ->
    Format.fprintf fmt "new %s" c;
    pp_args fmt args
  | Ast.VecLit elems ->
    Format.fprintf fmt "vec[";
    List.iteri
      (fun i e ->
        if i > 0 then Format.fprintf fmt ", ";
        pp_expr_prec fmt 0 e)
      elems;
    Format.fprintf fmt "]"
  | Ast.DictLit pairs ->
    Format.fprintf fmt "dict[";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf fmt ", ";
        pp_expr_prec fmt 0 k;
        Format.fprintf fmt " => ";
        pp_expr_prec fmt 0 v)
      pairs;
    Format.fprintf fmt "]"
  | Ast.Index (base, idx) ->
    pp_expr_prec fmt 12 base;
    Format.fprintf fmt "[";
    pp_expr_prec fmt 0 idx;
    Format.fprintf fmt "]"
  | Ast.InstanceOf (e, c) ->
    let open_p = 7 < ctx in
    if open_p then Format.fprintf fmt "(";
    pp_expr_prec fmt 8 e;
    Format.fprintf fmt " instanceof %s" c;
    if open_p then Format.fprintf fmt ")"

and pp_call fmt name args =
  Format.fprintf fmt "%s" name;
  pp_args fmt args

and pp_args fmt args =
  Format.fprintf fmt "(";
  List.iteri
    (fun i a ->
      if i > 0 then Format.fprintf fmt ", ";
      pp_expr_prec fmt 0 a)
    args;
  Format.fprintf fmt ")"

let pp_expr fmt e = pp_expr_prec fmt 0 e

let pp_lvalue fmt = function
  | Ast.LVar v -> Format.fprintf fmt "$%s" v
  | Ast.LIndex (base, idx) ->
    pp_expr_prec fmt 12 base;
    Format.fprintf fmt "[";
    pp_expr fmt idx;
    Format.fprintf fmt "]"
  | Ast.LProp (recv, p) ->
    pp_expr_prec fmt 12 recv;
    Format.fprintf fmt "->%s" p

let rec pp_stmt fmt = function
  | Ast.Expr e -> Format.fprintf fmt "@[<h>%a;@]" pp_expr e
  | Ast.Assign (lv, e) -> Format.fprintf fmt "@[<h>%a = %a;@]" pp_lvalue lv pp_expr e
  | Ast.VecPushStmt (base, e) ->
    Format.fprintf fmt "@[<h>%a[] = %a;@]" (fun fmt b -> pp_expr_prec fmt 12 b) base pp_expr e
  | Ast.If (arms, else_block) ->
    List.iteri
      (fun i (cond, body) ->
        if i > 0 then Format.fprintf fmt "@,";
        Format.fprintf fmt "@[<v 2>%s (%a) {" (if i = 0 then "if" else "else if") pp_expr cond;
        pp_block_body fmt body;
        Format.fprintf fmt "@]@,}")
      arms;
    if else_block <> [] then begin
      Format.fprintf fmt "@,@[<v 2>else {";
      pp_block_body fmt else_block;
      Format.fprintf fmt "@]@,}"
    end
  | Ast.While (cond, body) ->
    Format.fprintf fmt "@[<v 2>while (%a) {" pp_expr cond;
    pp_block_body fmt body;
    Format.fprintf fmt "@]@,}"
  | Ast.For (init, cond, step, body) ->
    Format.fprintf fmt "@[<v 2>for (";
    (match init with Some s -> pp_inline_stmt fmt s | None -> ());
    Format.fprintf fmt "; ";
    (match cond with Some c -> pp_expr fmt c | None -> ());
    Format.fprintf fmt "; ";
    (match step with Some s -> pp_inline_stmt fmt s | None -> ());
    Format.fprintf fmt ") {";
    pp_block_body fmt body;
    Format.fprintf fmt "@]@,}"
  | Ast.Foreach (e, v, body) ->
    Format.fprintf fmt "@[<v 2>foreach (%a as $%s) {" pp_expr e v;
    pp_block_body fmt body;
    Format.fprintf fmt "@]@,}"
  | Ast.Return None -> Format.fprintf fmt "return;"
  | Ast.Return (Some e) -> Format.fprintf fmt "@[<h>return %a;@]" pp_expr e
  | Ast.Echo e -> Format.fprintf fmt "@[<h>echo %a;@]" pp_expr e
  | Ast.Break -> Format.fprintf fmt "break;"
  | Ast.Continue -> Format.fprintf fmt "continue;"

(* statements inside for-headers have no trailing ';' *)
and pp_inline_stmt fmt = function
  | Ast.Assign (lv, e) -> Format.fprintf fmt "%a = %a" pp_lvalue lv pp_expr e
  | Ast.Expr e -> pp_expr fmt e
  | s -> pp_stmt fmt s

and pp_block_body fmt body = List.iter (fun s -> Format.fprintf fmt "@,%a" pp_stmt s) body

let pp_func kw fmt (f : Ast.func_decl) =
  Format.fprintf fmt "@[<v 2>%s %s(%s) {" kw f.Ast.fname
    (String.concat ", " (List.map (fun p -> "$" ^ p) f.Ast.params));
  pp_block_body fmt f.Ast.body;
  Format.fprintf fmt "@]@,}"

let pp_decl fmt = function
  | Ast.DFunc f -> pp_func "function" fmt f
  | Ast.DClass c ->
    Format.fprintf fmt "@[<v 2>class %s%s {" c.Ast.cname
      (match c.Ast.cparent with None -> "" | Some p -> " extends " ^ p);
    List.iter
      (fun (p : Ast.prop_decl) ->
        match p.Ast.pdefault with
        | None -> Format.fprintf fmt "@,prop $%s;" p.Ast.pname
        | Some e -> Format.fprintf fmt "@,prop $%s = %a;" p.Ast.pname pp_expr e)
      c.Ast.cprops;
    List.iter (fun m -> Format.fprintf fmt "@,%a" (pp_func "method") m) c.Ast.cmethods;
    Format.fprintf fmt "@]@,}"

let pp_program fmt program =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i d ->
      if i > 0 then Format.fprintf fmt "@,@,";
      pp_decl fmt d)
    program;
  Format.fprintf fmt "@]@."

let to_source program = Format.asprintf "%a" pp_program program
