test/test_jit.ml: Alcotest Array Float Hhbc Interp Jit Jit_profile Js_util List Mh_runtime Minihack Option Vasm
