type traffic = Interp.Engine.t -> unit

type vm = {
  repo : Hhbc.Repo.t;
  options : Options.t;
  package : Package.t option;
  counters : Jit_profile.Counters.t;
  layouts : Mh_runtime.Class_layout.table;
  compiled : Jit.Compiler.compiled;
}

let compile_config (options : Options.t) =
  {
    Jit.Compiler.default_config with
    Jit.Compiler.use_measured_bb_weights = options.Options.bb_layout_opt;
    (* the shipped order is passed explicitly; local recomputation (when
       func_sort_opt is off) uses the tier-1 graph like pre-Jump-Start HHVM *)
    func_order = Jit.Compiler.C3_tier1;
    mode = Vasm.Lower.Optimized;
  }

let layouts_for repo (options : Options.t) counters =
  let hotness cid nid = Jit_profile.Counters.prop_hotness counters cid nid in
  Mh_runtime.Class_layout.build repo ~reorder:options.Options.prop_reorder_opt ~hotness

let serving_engine vm ?probes () =
  let heap = Mh_runtime.Heap.create vm.repo vm.layouts in
  Interp.Engine.create ?probes vm.repo heap

let boot_with_package repo options ?jit_bug (package : Package.t) =
  match jit_bug with
  | Some bug when bug package -> Error "JIT compiler crash triggered by profile data"
  | Some _ | None ->
    let counters = package.Package.counters in
    let layouts = layouts_for repo options counters in
    let config = compile_config options in
    let vfuncs = Jit.Compiler.lower_all repo counters config in
    let measured = if options.Options.bb_layout_opt then Some package.Package.vasm else None in
    let order =
      if options.Options.func_sort_opt then Some package.Package.func_order else None
    in
    let compiled = Jit.Compiler.finish repo counters config ~measured ?order vfuncs in
    Ok { repo; options; package = Some package; counters; layouts; compiled }

let boot_without_jumpstart repo options ~traffic =
  let counters = Jit_profile.Counters.create repo in
  let layouts = Mh_runtime.Class_layout.build repo ~reorder:false ~hotness:(fun _ _ -> 0) in
  let heap = Mh_runtime.Heap.create repo layouts in
  let engine = Interp.Engine.create ~probes:(Jit_profile.Collector.probes counters) repo heap in
  traffic engine;
  let config = Jit.Compiler.no_jumpstart_config in
  let compiled = Jit.Compiler.compile repo counters config ~measured:None in
  { repo; options; package = None; counters; layouts; compiled }

type outcome = Jump_started of vm | Fell_back of vm * string

(* Returns the interpreter step count alongside the verdict so the caller can
   charge the simulated clock for the work actually performed. *)
let health_check vm traffic =
  match traffic with
  | None -> (0, Ok ())
  | Some run ->
    let engine = serving_engine vm () in
    let verdict =
      try
        run engine;
        Ok ()
      with
      | Interp.Engine.Runtime_error msg -> Error ("unhealthy: " ^ msg)
      | Failure msg -> Error ("unhealthy: " ^ msg)
    in
    (Interp.Engine.steps engine, verdict)

(* How one boot attempt obtained (or failed to obtain) package bytes.  The
   plain store source only ever yields [Fetched]/[Fetch_none]; the
   distribution-network source adds gate rejects (burn a boot attempt, like
   any other validation failure) and network exhaustion (degrade straight to
   the no-Jump-Start fallback). *)
type fetched =
  | Fetched of string * Package.meta
  | Fetch_stale of string * string
      (** fingerprint-mismatched payload worth salvaging: (bytes, gate reason) *)
  | Fetch_rejected of string
  | Fetch_unavailable of string
  | Fetch_none of string

let boot_via ?telemetry repo (options : Options.t) ~(fetch : unit -> fetched) ?jit_bug
    ?health_traffic ~fallback_traffic () =
  let tel f =
    match telemetry with
    | Some t -> f t
    | None -> ()
  in
  let timed name ~cost f =
    match telemetry with
    | Some t -> Js_telemetry.timed t name ~cost f
    | None -> f ()
  in
  let fall_back reason =
    tel (fun t ->
        Js_telemetry.incr t "consumer.fallbacks";
        Js_telemetry.record t (Js_telemetry.Fallback { source = "consumer"; reason }));
    Fell_back (boot_without_jumpstart repo options ~traffic:fallback_traffic, reason)
  in
  let note_attempt k outcome =
    tel (fun t ->
        Js_telemetry.incr t "consumer.boot_attempts";
        Js_telemetry.record t
          (Js_telemetry.Boot_attempt { source = "consumer"; attempt = k + 1; outcome }))
  in
  if not options.Options.enabled then fall_back "Jump-Start disabled by configuration"
  else begin
    let rec attempt k last_error =
      if k >= options.Options.max_boot_attempts then
        fall_back (Printf.sprintf "exhausted %d boot attempts (%s)" k last_error)
      else
        let fail stage msg =
          tel (fun t ->
              Js_telemetry.incr t (Printf.sprintf "consumer.%s_failures" stage);
              Js_telemetry.record t
                (Js_telemetry.Validation_failed
                   { stage = "consumer." ^ stage; reason = msg }));
          note_attempt k (stage ^ "_failed");
          attempt (k + 1) msg
        in
        (* Shared continuation once package bytes decoded (exact or salvaged):
           verify -> coverage -> compile -> health check.  A salvaged package
           goes through the very same gates — the transfer drops infeasible
           counters precisely so it can. *)
        let proceed package =
          (* Profile-consistency verification (§VI-A): the package decoded,
             but do its counters actually describe this repo's CFGs? *)
          match
            timed "consumer.verify"
              ~cost:(fun _ -> float_of_int (Hhbc.Repo.n_funcs repo) *. 1e-7)
              (fun () -> Package_check.result repo package)
          with
          | Error msg ->
            tel (fun t -> Js_telemetry.incr t "verify.package_rejects");
            fail "verify" msg
          | Ok () -> (
            match Package.check_coverage package options with
            | Error msg -> fail "coverage" msg
            | Ok () -> (
              match
                timed "consumer.compile"
                  ~cost:(function
                    | Ok vm -> float_of_int vm.compiled.Jit.Compiler.n_translations *. 1e-4
                    | Error _ -> 0.)
                  (fun () -> boot_with_package repo options ?jit_bug package)
              with
              | Error msg -> fail "compile" msg
              | Ok vm -> (
                match
                  timed "consumer.health_check"
                    ~cost:(fun (steps, _) -> float_of_int steps *. 1e-8)
                    (fun () -> health_check vm health_traffic)
                with
                | _, Ok () ->
                  note_attempt k "jump_started";
                  tel (fun t -> Js_telemetry.incr t "consumer.jump_starts");
                  Jump_started vm
                | _, Error msg -> fail "health_check" msg)))
        in
        match fetch () with
        | Fetch_none reason -> fall_back reason
        | Fetch_unavailable reason -> fall_back reason
        | Fetch_rejected msg -> fail "fetch" msg
        | Fetched (bytes, _meta) -> (
          match
            timed "consumer.decode"
              ~cost:(fun _ -> float_of_int (String.length bytes) /. 25.0e6)
              (fun () -> Package.of_bytes repo bytes)
          with
          | Error msg -> fail "decode" msg
          | Ok package -> proceed package)
        | Fetch_stale (bytes, gate_reason) -> (
          (* Stale-profile salvage (§VI-B): the gate refused the package
             because it was profiled on a different build — match it against
             the live repo instead of discarding it.  Costed like a decode
             plus a per-function matching pass. *)
          match
            timed "consumer.salvage"
              ~cost:(fun _ ->
                (float_of_int (String.length bytes) /. 25.0e6)
                +. (float_of_int (Hhbc.Repo.n_funcs repo) *. 2e-7))
              (fun () -> Package.of_bytes_stale repo bytes)
          with
          | Error msg -> fail "salvage" (gate_reason ^ "; salvage failed: " ^ msg)
          | Ok (package, stats) ->
            let q = Jit_profile.Stale_match.quality stats in
            if stats.Jit_profile.Stale_match.funcs_matched = 0
               || q < options.Options.salvage_min_match
            then
              fail "salvage"
                (Format.asprintf "match quality %.2f below threshold %.2f (%a)" q
                   options.Options.salvage_min_match Jit_profile.Stale_match.pp_stats stats)
            else begin
              tel (fun t ->
                  Js_telemetry.incr t "consumer.salvages";
                  Js_telemetry.incr t ~by:stats.Jit_profile.Stale_match.funcs_matched
                    "match.funcs_matched";
                  Js_telemetry.incr t ~by:stats.Jit_profile.Stale_match.blocks_matched
                    "match.blocks_matched";
                  Js_telemetry.incr t ~by:stats.Jit_profile.Stale_match.counters_transferred
                    "match.counters_transferred");
              proceed package
            end)
    in
    attempt 0 "no attempts made"
  end

let boot ?telemetry repo (options : Options.t) store rng ~region ~bucket ?jit_bug
    ?health_traffic ~fallback_traffic () =
  let fetch () =
    match Store.pick_random ?telemetry store rng ~region ~bucket with
    | None -> Fetch_none "no profile package available"
    | Some (bytes, meta) -> Fetched (bytes, meta)
  in
  boot_via ?telemetry repo options ~fetch ?jit_bug ?health_traffic ~fallback_traffic ()

let boot_dist ?telemetry repo (options : Options.t) dist rng ?(now = 0.) ~region ~bucket
    ?jit_bug ?health_traffic ~fallback_traffic () =
  let fetch () =
    match Dist_store.fetch ?telemetry dist rng ~now ~region ~bucket with
    | Dist_store.Delivered { bytes; meta; _ } -> Fetched (bytes, meta)
    | Dist_store.Rejected { kind = Dist_store.Fingerprint_mismatch; reason; bytes; _ }
      when options.Options.salvage_stale ->
      Fetch_stale (bytes, reason)
    | Dist_store.Rejected { reason; _ } -> Fetch_rejected reason
    | Dist_store.Unavailable { reason; _ } ->
      Fetch_unavailable ("package fetch failed: " ^ reason)
    | Dist_store.No_package -> Fetch_none "no profile package available"
  in
  boot_via ?telemetry repo options ~fetch ?jit_bug ?health_traffic ~fallback_traffic ()
