lib/runtime/class_layout.ml: Array Format Hashtbl Hhbc Option
