lib/util/binio.mli:
