lib/machine/cache.mli:
