(** The bytecode interpreter ("threaded interpreter", paper §II-A).

    This is the VM's semantic ground truth: JIT translations in this
    reproduction are performance/layout artifacts, while actual execution
    always flows through here.  The interpreter counts executed instructions
    per function so the VM layer can convert work into simulated cycles under
    whichever execution mode (interp / live / profiling / optimized) covers
    each function. *)

(** Raised on dynamic errors: undefined method, bad operand types,
    out-of-bounds vec access, stack overflow, fuel exhaustion. *)
exception Runtime_error of string

type t

(** Inline-cache and frame-pool effectiveness counters, live-updated.
    Method-call sites distinguish monomorphic hits (receiver class matches
    the site's single cached entry) from polymorphic-table hits; property
    sites likewise.  A miss is a full repo/layout lookup that installed a
    new cache binding. *)
type cache_stats = {
  mutable meth_hit_mono : int;
  mutable meth_hit_poly : int;
  mutable meth_miss : int;
  mutable prop_hit_mono : int;
  mutable prop_hit_poly : int;
  mutable prop_miss : int;
  mutable frame_reuses : int;
  mutable frame_allocs : int;
}

(** What the typed (dataflow-driven) translation overlay did at translation
    time: constant segments folded, constant local loads rewritten,
    conditionals statically resolved, identity casts dropped, dead stores
    demoted to pops, dead blocks poisoned, analysis-era superinstructions
    installed.  Translation statistics only — deliberately excluded from
    telemetry so typed-on and typed-off runs stay telemetry-byte-identical. *)
type typed_stats = {
  mutable typed_folds : int;
  mutable typed_consts : int;
  mutable typed_jumps : int;
  mutable typed_casts : int;
  mutable typed_dead_stores : int;
  mutable typed_dead_blocks : int;
  mutable typed_fused : int;
}

(** [create ?probes ?fuel ?inline_cache ?typed repo heap] makes an
    interpreter.
    [fuel] bounds the total number of executed instructions (default: 200
    million); exceeding it raises {!Runtime_error}, protecting tests and
    simulations against non-terminating generated programs.

    [inline_cache] (default [true]) enables HHVM-style per-call-site
    dispatch caches: a monomorphic-with-polymorphic-fallback method cache at
    each [CallMethod] site, a [(class id -> physical slot)] cache at each
    [GetProp]/[SetProp] site, precomputed block maps, and call-frame/operand-
    stack reuse across invocations.  The caches memoize pure lookups over
    immutable repo/layout tables, so results, probe streams and step counts
    are identical with caching on or off — [~inline_cache:false] is the
    [--no-inline-cache] escape hatch for A/B measurements.

    [typed] (default [true]) additionally lets {!Js_analysis.Dataflow} facts
    drive the translation: constant-folded segments collapse to a single
    push, statically-decided conditionals lose their test, identity casts
    become no-ops, provably dead stores skip the write, dataflow-dead blocks
    are poisoned, and wider analysis-era superinstructions are fused.  Every
    rewrite preserves results, output, probe streams and step/fuel
    accounting exactly, so [~typed:false] is a pure-performance A/B knob
    (the bench's [typed_translation] section). *)
val create :
  ?probes:Probes.t ->
  ?fuel:int ->
  ?inline_cache:bool ->
  ?typed:bool ->
  Hhbc.Repo.t ->
  Mh_runtime.Heap.t ->
  t

(** Process-wide default for {!create}'s [?inline_cache] (initially [true]).
    Layers that construct engines internally (cluster/fleet simulations)
    inherit this, so a whole-stack A/B — e.g. checking that fleet telemetry
    is byte-identical with caching on and off — only needs to flip this ref.
    The [--no-inline-cache] CLI flag sets it to [false]. *)
val default_inline_cache : bool ref

(** Process-wide default for {!create}'s [?typed] (initially [true]); the
    typed-translation analogue of {!default_inline_cache}. *)
val default_typed : bool ref

val repo : t -> Hhbc.Repo.t
val heap : t -> Mh_runtime.Heap.t

(** Total instructions executed so far. *)
val steps : t -> int

(** Per-function executed-instruction counts (indexed by fid); shared array,
    live-updated. *)
val func_steps : t -> int array

(** Everything printed by [echo] so far. *)
val output : t -> string

val clear_output : t -> unit

(** The engine's live inline-cache counters (all zero when the engine was
    created with [~inline_cache:false]). *)
val cache_stats : t -> cache_stats

(** The same counters as telemetry-ready [("interp.cache.*", value)] pairs,
    for {!Js_telemetry.import_counters}-style bulk export. *)
val cache_counters : t -> (string * int) list

(** The typed overlay's translation statistics (all zero with
    [~typed:false]). *)
val typed_stats : t -> typed_stats

(** {!typed_stats} as [("interp.typed.*", value)] pairs.  Bench-report only:
    these are intentionally NOT part of {!cache_counters}, so telemetry
    stays byte-identical with the overlay on or off. *)
val typed_counters : t -> (string * int) list

(** [call t fid args] invokes a top-level function.
    @raise Runtime_error on dynamic errors. *)
val call : t -> Hhbc.Instr.fid -> Hhbc.Value.t list -> Hhbc.Value.t

(** [call_method t handle name args] dispatches a method on an object. *)
val call_method : t -> int -> Hhbc.Instr.nid -> Hhbc.Value.t list -> Hhbc.Value.t

(** [run_main t] executes the program entry point: the function named
    ["main"], or the first unit's main.
    @raise Runtime_error if no entry point exists. *)
val run_main : t -> Hhbc.Value.t
