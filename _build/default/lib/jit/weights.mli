(** Estimated Vasm block/arc weights from tier-1 bytecode counters.

    This is the pre-Jump-Start situation of paper §V-A: profile data is
    collected at bytecode granularity, then pushed through lowering and
    inlining to the bottom of the pipeline, picking up two systematic
    inaccuracies on the way:

    - {b context insensitivity}: an inlined callee's counters are aggregates
      over {e all} its callers, apportioned to this call site by a uniform
      scale factor [site_calls / callee_entries];
    - {b invisible guard failures}: tier-1 cannot see tier-2 side exits, so
      every slow-path block and arc is estimated at weight zero;
    - {b pipeline drift}: in HHVM the weights degrade further through the
      many optimization passes between bytecode and final Vasm (the
      observation of Panchenko et al.'s BOLT, which the paper cites as the
      motivation for §V-A).  Our lowering is single-step, so this drift is
      modelled explicitly: each estimated block weight is scaled by a
      deterministic per-block factor in [0.55, 1.45] (hash-seeded, so runs
      are reproducible), with arcs scaled consistently by their endpoints.

    The seeder's optimized-code instrumentation ({!Vasm_profile}) measures
    the true values; Figure 6's basic-block-layout speedup is the gap
    between layouts driven by these two weight sources. *)

type t = {
  block_weights : float array;  (** indexed by vasm block id *)
  arc_weight : int * int -> float;  (** (src, dst) -> weight; 0 if unknown *)
}

val estimate : Hhbc.Repo.t -> Jit_profile.Counters.t -> Vasm.Vfunc.t -> t

(** [to_cfg vfunc weights] packages a Vfunc plus weights as a layout-ready
    {!Layout.Cfg.t} (block ids preserved). *)
val to_cfg : Vasm.Vfunc.t -> t -> Layout.Cfg.t
