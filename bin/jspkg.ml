(* jspkg: save, inspect and replay Jump-Start profile packages on disk.

   This is the paper's §III item 4 use case: "if a collected profile
   triggers a JIT bug, compiler engineers can use that to replay and step
   through the execution of the JIT in order to reproduce and understand the
   issue, as well as to verify whether or not a candidate fix actually
   works."

     dune exec bin/jspkg.exe -- collect prog.mh -o prog.jspkg [--runs N]
     dune exec bin/jspkg.exe -- inspect prog.jspkg prog.mh
     dune exec bin/jspkg.exe -- verify  prog.jspkg prog.mh
     dune exec bin/jspkg.exe -- replay  prog.jspkg prog.mh
*)

open Cmdliner
module JS = Jumpstart

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let with_errors f =
  try f () with
  | Minihack.Lexer.Error msg | Minihack.Parser.Error msg | Minihack.Compile.Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Interp.Engine.Runtime_error msg ->
    Printf.eprintf "runtime error: %s\n" msg;
    exit 2
  | Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

let load_repo path = Minihack.Compile.compile_source ~path (read_file path)

(* traffic = repeatedly invoking the program's entry point *)
let main_traffic runs engine =
  for _ = 1 to runs do
    ignore (Interp.Engine.run_main engine);
    Mh_runtime.Heap.reset_arena (Interp.Engine.heap engine)
  done

let source_pos n = Arg.(required & pos n (some file) None & info [] ~docv:"PROG.mh")
let package_pos n = Arg.(required & pos n (some file) None & info [] ~docv:"PKG.jspkg")

let collect_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"PKG" ~doc:"output package path")
  in
  let runs =
    Arg.(value & opt int 50 & info [ "runs" ] ~docv:"N" ~doc:"profiled executions of main()")
  in
  let action src_path out runs =
    with_errors (fun () ->
        let repo = load_repo src_path in
        let options = { JS.Options.default with JS.Options.min_coverage_funcs = 1; min_coverage_entries = 1 } in
        match
          JS.Seeder.run repo options ~profile_traffic:(main_traffic runs)
            ~optimized_traffic:(main_traffic runs) ~validation_traffic:(main_traffic 3) ~region:0
            ~bucket:0 ~seeder_id:0 ()
        with
        | Error msg ->
          Printf.eprintf "seeder rejected the profile: %s\n" msg;
          exit 3
        | Ok outcome ->
          write_file out outcome.JS.Seeder.bytes;
          Printf.printf "wrote %d bytes to %s\n" (String.length outcome.JS.Seeder.bytes) out;
          Format.printf "%a@." JS.Package.pp_meta outcome.JS.Seeder.package.JS.Package.meta)
  in
  Cmd.v
    (Cmd.info "collect" ~doc:"run the seeder pipeline on a program and save the package")
    Term.(const action $ source_pos 0 $ out $ runs)

let inspect_cmd =
  let action pkg_path src_path =
    with_errors (fun () ->
        let repo = load_repo src_path in
        match JS.Package.of_bytes repo (read_file pkg_path) with
        | Error msg ->
          Printf.eprintf "invalid package: %s\n" msg;
          exit 3
        | Ok p ->
          Format.printf "%a@." JS.Package.pp_meta p.JS.Package.meta;
          Printf.printf "preload units (%d):" (Array.length p.JS.Package.preload_units);
          Array.iter
            (fun uid -> Printf.printf " %s" (Hhbc.Repo.unit_of repo uid).Hhbc.Unit_def.path)
            p.JS.Package.preload_units;
          print_newline ();
          Printf.printf "function placement order (first 15):\n";
          Array.iteri
            (fun i fid ->
              if i < 15 then
                Printf.printf "  %2d. %-24s (%d profiled entries)\n" (i + 1)
                  (Hhbc.Repo.func repo fid).Hhbc.Func.name
                  (Jit_profile.Counters.func_entries p.JS.Package.counters fid))
            p.JS.Package.func_order;
          let props = Jit_profile.Counters.prop_table p.JS.Package.counters in
          if props <> [] then begin
            Printf.printf "hottest properties (the §V-C \"K::P\" table):\n";
            List.iteri
              (fun i (key, count) -> if i < 10 then Printf.printf "  %-28s %8d accesses\n" key count)
              (List.sort (fun (_, a) (_, b) -> compare b a) props)
          end;
          let cg = Jit.Vasm_profile.call_graph p.JS.Package.vasm in
          Printf.printf "tier-2 call graph: %d arcs\n" (List.length cg))
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"decode a package against a program's repo and summarize it")
    Term.(const action $ package_pos 0 $ source_pos 1)

let verify_cmd =
  let action pkg_path src_path =
    with_errors (fun () ->
        let repo = load_repo src_path in
        match JS.Package.of_bytes repo (read_file pkg_path) with
        | Error msg ->
          Printf.eprintf "invalid package: %s\n" msg;
          exit 3
        | Ok p ->
          let diags = JS.Package_check.check repo p in
          List.iter (fun d -> print_endline (Js_analysis.Diag.to_string d)) diags;
          let errors = List.length (Js_analysis.Diag.errors diags) in
          let warnings = List.length diags - errors in
          Printf.printf "%s against %s: %d errors, %d warnings\n" pkg_path src_path errors warnings;
          if errors > 0 then exit 4)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "decode a package (exit 3 on framing/decode damage) and run the profile-consistency pass \
          against a program's repo (exit 4 on error diagnostics)")
    Term.(const action $ package_pos 0 $ source_pos 1)

let analyze_cmd =
  let as_json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the facts and diagnostics as JSON")
  in
  let action pkg_path src_path as_json =
    with_errors (fun () ->
        let repo = load_repo src_path in
        match JS.Package.of_bytes repo (read_file pkg_path) with
        | Error msg ->
          Printf.eprintf "invalid package: %s\n" msg;
          exit 3
        | Ok p ->
          (* dataflow lints over the program plus the package-consistency
             pass (including the P320/P321 feasibility gates), one report *)
          let diags =
            Js_analysis.Diag.sort (Js_analysis.Lint.check repo @ JS.Package_check.check repo p)
          in
          print_string
            (if as_json then Js_analysis.Report.json repo ~diags
             else Js_analysis.Report.text repo ~diags);
          if Js_analysis.Diag.errors diags <> [] then exit 4)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "run the dataflow analyses over the program and check the package against them: \
          per-function facts, A4xx lints, and the P3xx profile-consistency diagnostics \
          including the P320/P321 static-feasibility gates (exit 3 on decode damage, 4 on \
          error diagnostics)")
    Term.(const action $ package_pos 0 $ source_pos 1 $ as_json)

let replay_cmd =
  let action pkg_path src_path =
    with_errors (fun () ->
        let repo = load_repo src_path in
        match JS.Package.of_bytes repo (read_file pkg_path) with
        | Error msg ->
          Printf.eprintf "invalid package: %s\n" msg;
          exit 3
        | Ok p -> (
          match JS.Consumer.boot_with_package repo JS.Options.default p with
          | Error msg ->
            (* this is precisely the condition the tool exists to capture *)
            Printf.printf "JIT replay FAILED (reproduced from the saved profile): %s\n" msg;
            exit 4
          | Ok vm ->
            Printf.printf "JIT replay ok: %d translations, hot %d B, cold %d B\n"
              vm.JS.Consumer.compiled.Jit.Compiler.n_translations
              (Jit.Code_cache.used_hot vm.JS.Consumer.compiled.Jit.Compiler.cache)
              (Jit.Code_cache.used_cold vm.JS.Consumer.compiled.Jit.Compiler.cache);
            Hashtbl.iter
              (fun fid vf ->
                Printf.printf "  %-24s %4d blocks %6d B  %d inlined\n"
                  (Hhbc.Repo.func repo fid).Hhbc.Func.name (Vasm.Vfunc.n_blocks vf)
                  (Vasm.Vfunc.code_size vf)
                  (Vasm.Inline_tree.n_inlined vf.Vasm.Vfunc.tree))
              vm.JS.Consumer.compiled.Jit.Compiler.vfuncs;
            let engine = JS.Consumer.serving_engine vm () in
            let result = Interp.Engine.run_main engine in
            print_string (Interp.Engine.output engine);
            Printf.printf "main() under the replayed configuration => %s\n"
              (Hhbc.Value.to_string result)))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"boot a consumer from a saved package (reproduce JIT behaviour from a profile)")
    Term.(const action $ package_pos 0 $ source_pos 1)

let () =
  let info = Cmd.info "jspkg" ~doc:"save, inspect and replay Jump-Start profile packages" in
  exit (Cmd.eval (Cmd.group info [ collect_cmd; inspect_cmd; verify_cmd; analyze_cmd; replay_cmd ]))
