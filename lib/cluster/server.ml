module MA = Workload.Macro_app

type package = {
  covered : bool array;
  opt_bytes : int;
  compile_cycles : float;
  package_bytes : int;
  steady_speedup : float;
  quality : float;
  bad : bool;
}

type js_role = No_jumpstart | Seeder | Consumer of package

type config = {
  cores : int;
  clock_hz : float;
  offered_rps : float;
  utilization_target : float;
  jit_threads : int;
  profile_request_target : int;
  init_seconds_sequential : float;
  init_seconds_parallel : float;
  deserialize_bytes_per_sec : float;
  relocation_bytes_per_sec : float;
  unit_load_cycles_per_byte : float;
  seeder_collect_seconds : float;
  crash_delay_seconds : float;
  code_capacity_bytes : int;
  cold_penalty : float;
  cold_decay_seconds : float;
  traffic_ramp_seconds : float;
}

let default_config =
  {
    cores = 16;
    clock_hz = Jit.Tiers.clock_hz;
    offered_rps = 10_000.;
    utilization_target = 0.8;
    jit_threads = 6;
    profile_request_target = 1_800;
    init_seconds_sequential = 85.;
    init_seconds_parallel = 38.;
    deserialize_bytes_per_sec = 25.0e6;
    relocation_bytes_per_sec = 0.9e6;
    unit_load_cycles_per_byte = 3.0;
    seeder_collect_seconds = 300.;
    crash_delay_seconds = 120.;
    code_capacity_bytes = 560 * 1024 * 1024;
    cold_penalty = 0.30;
    cold_decay_seconds = 100.;
    traffic_ramp_seconds = 210.;
  }

type crash_kind = Bad_package

(* execution modes of a function on this server *)
let m_undiscovered = 0
let m_profiling = 1
let m_opt_pending = 2
let m_optimized = 3
let m_live = 4
let m_interp_only = 5
let n_modes = 6

type phase =
  | Booting of float  (** serving starts at this time *)
  | Serving
  | Collecting of float  (** seeder instrumented run ends at this time *)
  | Exited
  | Crashed of crash_kind

type t = {
  cfg : config;
  app : MA.t;
  role : js_role;
  discovery : int array;
  disc_order : int array;
  mutable disc_ptr : int;
  mode : int array;
  cyc : float array;  (** cycles per bytecode instruction, per mode *)
  agg : float array;  (** per-mode sum of p_touch * weight (instrs/request) *)
  mutable phase : phase;
  serve_start : float;
  mutable time : float;
  mutable req_count_f : float;
  mutable req_count : int;
  mutable window_open : bool;
  mutable opt_queue_cycles : float;
  mutable opt_total_bytes : float;
  mutable reloc_remaining : float;
  mutable relocated : bool;
  mutable code_bytes : float;
  mutable jit_ceased : bool;
  mutable seeder_pkg : package option;
  mutable last_rps : float;
  mutable last_latency : float;
  rps_series : Js_util.Stats.Series.t;
  latency_series : Js_util.Stats.Series.t;
  code_series : Js_util.Stats.Series.t;
  peak_request_cycles : float;
}

let base_cycles mode =
  match mode with
  | m when m = m_undiscovered || m = m_interp_only -> Jit.Tiers.cycles_per_instr Jit.Tiers.Interp
  | m when m = m_profiling || m = m_opt_pending -> Jit.Tiers.cycles_per_instr Jit.Tiers.Profiling
  | m when m = m_optimized -> Jit.Tiers.cycles_per_instr Jit.Tiers.Optimized
  | m when m = m_live -> Jit.Tiers.cycles_per_instr Jit.Tiers.Live
  | _ -> invalid_arg "Server.base_cycles"

(* Final per-request cycles once fully warmed, used for normalization.
   Functions profiled inside the window end up optimized; later discoveries
   get live translations while code-cache capacity lasts; the rest stay
   interpreted. *)
let compute_peak cfg (app : MA.t) role discovery cyc =
  let n = Array.length app.MA.funcs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare discovery.(a) discovery.(b)) order;
  let covered f =
    match role with
    | Consumer p -> p.covered.(f)
    | No_jumpstart | Seeder -> false
  in
  let code = ref 0. in
  (match role with
  | Consumer p -> code := float_of_int p.opt_bytes
  | No_jumpstart | Seeder -> ());
  let total = ref 0. in
  Array.iter
    (fun f ->
      let mf = app.MA.funcs.(f) in
      let size = float_of_int mf.MA.size in
      let mode =
        if covered f then m_optimized
        else if discovery.(f) > 100_000_000 then m_interp_only (* effectively never *)
        else begin
          match role with
          | No_jumpstart | Seeder ->
            if discovery.(f) <= cfg.profile_request_target then begin
              code := !code +. (size *. Jit.Tiers.code_expansion Jit.Tiers.Optimized);
              m_optimized
            end
            else if !code < float_of_int cfg.code_capacity_bytes then begin
              code := !code +. (size *. Jit.Tiers.code_expansion Jit.Tiers.Live);
              m_live
            end
            else m_interp_only
          | Consumer _ ->
            if !code < float_of_int cfg.code_capacity_bytes then begin
              code := !code +. (size *. Jit.Tiers.code_expansion Jit.Tiers.Live);
              m_live
            end
            else m_interp_only
        end
      in
      total := !total +. (mf.MA.p_touch *. mf.MA.weight *. cyc.(mode)))
    order;
  !total

let create ?(discovery_seed = 1234) ?(extra_boot_seconds = 0.) cfg app role =
  let rng = Js_util.Rng.create discovery_seed in
  let discovery = MA.sample_discovery app rng in
  let n = Array.length app.MA.funcs in
  let disc_order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare discovery.(a) discovery.(b)) disc_order;
  let cyc = Array.init n_modes base_cycles in
  (match role with
  | Consumer p ->
    let s = 1. +. ((p.steady_speedup -. 1.) *. p.quality) in
    cyc.(m_optimized) <- cyc.(m_optimized) /. s
  | No_jumpstart | Seeder -> ());
  let mode = Array.make n m_undiscovered in
  let agg = Array.make n_modes 0. in
  let code = ref 0. in
  (* consumers start with every covered function optimized *)
  (match role with
  | Consumer p ->
    Array.iteri
      (fun f (mf : MA.mfunc) ->
        if p.covered.(f) then begin
          mode.(f) <- m_optimized;
          agg.(m_optimized) <- agg.(m_optimized) +. (mf.MA.p_touch *. mf.MA.weight)
        end
        else agg.(m_undiscovered) <- agg.(m_undiscovered) +. (mf.MA.p_touch *. mf.MA.weight))
      app.MA.funcs;
    code := float_of_int p.opt_bytes
  | No_jumpstart | Seeder ->
    Array.iter
      (fun (mf : MA.mfunc) ->
        agg.(m_undiscovered) <- agg.(m_undiscovered) +. (mf.MA.p_touch *. mf.MA.weight))
      app.MA.funcs);
  let serve_start =
    (* extra_boot_seconds: time the boot spent outside this model, e.g.
       waiting on the distribution network's fetch ladder (0 adds nothing
       and keeps serve_start bit-identical) *)
    extra_boot_seconds
    +.
    match role with
    | No_jumpstart | Seeder -> cfg.init_seconds_sequential
    | Consumer p ->
      let deser = float_of_int p.package_bytes /. cfg.deserialize_bytes_per_sec in
      let compile =
        p.compile_cycles /. (float_of_int cfg.cores *. cfg.clock_hz)
      in
      deser +. compile +. cfg.init_seconds_parallel
  in
  let peak_request_cycles = compute_peak cfg app role discovery cyc in
  {
    cfg;
    app;
    role;
    discovery;
    disc_order;
    disc_ptr = 0;
    mode;
    cyc;
    agg;
    phase = Booting serve_start;
    serve_start;
    time = 0.;
    req_count_f = 0.;
    req_count = 0;
    window_open = (match role with Consumer _ -> false | No_jumpstart | Seeder -> true);
    opt_queue_cycles = 0.;
    opt_total_bytes = 0.;
    reloc_remaining = 0.;
    relocated = false;
    code_bytes = !code;
    jit_ceased = false;
    seeder_pkg = None;
    last_rps = 0.;
    last_latency = 0.;
    rps_series = Js_util.Stats.Series.create ();
    latency_series = Js_util.Stats.Series.create ();
    code_series = Js_util.Stats.Series.create ();
    peak_request_cycles;
  }

let move_agg t f ~from ~into =
  let mf = t.app.MA.funcs.(f) in
  let share = mf.MA.p_touch *. mf.MA.weight in
  t.agg.(from) <- t.agg.(from) -. share;
  t.agg.(into) <- t.agg.(into) +. share;
  t.mode.(f) <- into

(* Process function discoveries up to the current request count; returns the
   synchronous overhead cycles charged (unit loading + cheap translations). *)
let process_discoveries t =
  let overhead = ref 0. in
  let n = Array.length t.disc_order in
  let instrumented = match t.role with Seeder -> true | No_jumpstart | Consumer _ -> false in
  let prof_expansion =
    Jit.Tiers.code_expansion Jit.Tiers.Profiling *. if instrumented then 1.03 else 1.0
  in
  while
    t.disc_ptr < n
    && t.discovery.(t.disc_order.(t.disc_ptr)) <= t.req_count
  do
    let f = t.disc_order.(t.disc_ptr) in
    t.disc_ptr <- t.disc_ptr + 1;
    if t.mode.(f) = m_undiscovered then begin
      let mf = t.app.MA.funcs.(f) in
      let size = float_of_int mf.MA.size in
      overhead := !overhead +. (size *. t.cfg.unit_load_cycles_per_byte);
      if t.window_open then begin
        overhead := !overhead +. (size *. Jit.Tiers.compile_cycles_per_byte Jit.Tiers.Profiling);
        t.code_bytes <- t.code_bytes +. (size *. prof_expansion);
        move_agg t f ~from:m_undiscovered ~into:m_profiling
      end
      else if
        (not t.jit_ceased)
        && t.code_bytes +. (size *. Jit.Tiers.code_expansion Jit.Tiers.Live)
           < float_of_int t.cfg.code_capacity_bytes
      then begin
        overhead := !overhead +. (size *. Jit.Tiers.compile_cycles_per_byte Jit.Tiers.Live);
        t.code_bytes <- t.code_bytes +. (size *. Jit.Tiers.code_expansion Jit.Tiers.Live);
        move_agg t f ~from:m_undiscovered ~into:m_live
      end
      else begin
        t.jit_ceased <- true;
        move_agg t f ~from:m_undiscovered ~into:m_interp_only
      end
    end
  done;
  !overhead

let close_window t =
  t.window_open <- false;
  let instrumented = match t.role with Seeder -> true | No_jumpstart | Consumer _ -> false in
  let compile_scale = if instrumented then 1.05 else 1.0 in
  Array.iteri
    (fun f m ->
      if m = m_profiling then begin
        let size = float_of_int t.app.MA.funcs.(f).MA.size in
        t.opt_queue_cycles <-
          t.opt_queue_cycles
          +. (size *. Jit.Tiers.compile_cycles_per_byte Jit.Tiers.Optimized *. compile_scale);
        t.opt_total_bytes <-
          t.opt_total_bytes +. (size *. Jit.Tiers.code_expansion Jit.Tiers.Optimized);
        move_agg t f ~from:m_profiling ~into:m_opt_pending
      end)
    t.mode

let activate_optimized t =
  t.relocated <- true;
  Array.iteri (fun f m -> if m = m_opt_pending then move_agg t f ~from:m_opt_pending ~into:m_optimized) t.mode;
  match t.role with
  | Seeder -> t.phase <- Collecting (t.time +. t.cfg.seeder_collect_seconds)
  | No_jumpstart | Consumer _ -> ()

let request_cycles t =
  let acc = ref 0. in
  for m = 0 to n_modes - 1 do
    acc := !acc +. (t.agg.(m) *. t.cyc.(m))
  done;
  !acc

let record t ~rps ~latency =
  t.last_rps <- rps;
  t.last_latency <- latency;
  Js_util.Stats.Series.add t.rps_series ~time:t.time ~value:rps;
  Js_util.Stats.Series.add t.latency_series ~time:t.time ~value:latency;
  Js_util.Stats.Series.add t.code_series ~time:t.time ~value:t.code_bytes

let make_seeder_package t =
  let n = Array.length t.app.MA.funcs in
  let covered = Array.make n false in
  let opt_bytes = ref 0. and compile = ref 0. in
  Array.iteri
    (fun f m ->
      if m = m_optimized || m = m_opt_pending then begin
        covered.(f) <- true;
        let size = float_of_int t.app.MA.funcs.(f).MA.size in
        opt_bytes := !opt_bytes +. (size *. Jit.Tiers.code_expansion Jit.Tiers.Optimized);
        compile := !compile +. (size *. Jit.Tiers.compile_cycles_per_byte Jit.Tiers.Optimized)
      end)
    t.mode;
  (* package size: a calibrated fraction of the profiled bytecode *)
  let bytecode_covered = ref 0 in
  Array.iteri (fun f c -> if c then bytecode_covered := !bytecode_covered + t.app.MA.funcs.(f).MA.size) covered;
  {
    covered;
    opt_bytes = int_of_float !opt_bytes;
    compile_cycles = !compile;
    package_bytes = !bytecode_covered / 3;
    steady_speedup = 1.054;
    quality = 1.0;
    bad = false;
  }

(* Residual warmup beyond the JIT: cold data caches, backend connections,
   per-request state (paper §VII-A's "warming up some HHVM extensions that
   talk to backend services").  Decays with serving time. *)
let cold_factor t =
  let serving_seconds = Float.max 0. (t.time -. t.serve_start) in
  1. +. (t.cfg.cold_penalty *. exp (-.serving_seconds /. t.cfg.cold_decay_seconds))

let serve t ~dt =
  let cfg = t.cfg in
  let budget = ref (float_of_int cfg.cores *. cfg.clock_hz *. dt) in
  (* background optimized compilation (A -> B) *)
  if t.opt_queue_cycles > 0. then begin
    let jit_budget =
      Float.min t.opt_queue_cycles
        (float_of_int cfg.jit_threads /. float_of_int cfg.cores *. !budget)
    in
    t.opt_queue_cycles <- t.opt_queue_cycles -. jit_budget;
    budget := !budget -. jit_budget;
    if t.opt_queue_cycles <= 0. then t.reloc_remaining <- t.opt_total_bytes
  end
  else if t.reloc_remaining > 0. then begin
    (* relocation into the code cache (B -> C) *)
    let moved = Float.min t.reloc_remaining (cfg.relocation_bytes_per_sec *. dt) in
    t.reloc_remaining <- t.reloc_remaining -. moved;
    t.code_bytes <- t.code_bytes +. moved;
    if t.reloc_remaining <= 0. then activate_optimized t
  end;
  let req_cycles = request_cycles t *. cold_factor t in
  let est_requests =
    Float.min (cfg.offered_rps *. dt) (cfg.utilization_target *. !budget /. req_cycles)
  in
  (* expected discoveries for this tick's requests *)
  t.req_count <- int_of_float (t.req_count_f +. est_requests);
  let overhead = process_discoveries t in
  if t.window_open && t.req_count >= cfg.profile_request_target then close_window t;
  let serve_budget = Float.max 0. ((cfg.utilization_target *. !budget) -. overhead) in
  let req_cycles = request_cycles t *. cold_factor t in
  (* load-balancer slow start: traffic to a restarted server ramps up *)
  let ramp =
    if cfg.traffic_ramp_seconds <= 0. then 1.
    else Float.min 1. ((t.time -. t.serve_start) /. cfg.traffic_ramp_seconds)
  in
  let requests =
    Float.min (cfg.offered_rps *. dt) (ramp *. serve_budget /. req_cycles)
  in
  t.req_count_f <- t.req_count_f +. requests;
  t.req_count <- int_of_float t.req_count_f;
  let latency =
    (req_cycles +. (overhead /. Float.max 1. est_requests)) /. cfg.clock_hz
  in
  record t ~rps:(requests /. dt) ~latency;
  (* seeder lifecycle *)
  match t.phase with
  | Collecting done_at when t.time >= done_at ->
    t.seeder_pkg <- Some (make_seeder_package t);
    t.phase <- Exited
  | Collecting _ | Serving | Booting _ | Exited | Crashed _ -> ()

let step t ~dt =
  t.time <- t.time +. dt;
  match t.phase with
  | Crashed _ | Exited -> record t ~rps:0. ~latency:0.
  | Booting start ->
    if t.time >= start then begin
      t.phase <- Serving;
      serve t ~dt
    end
    else record t ~rps:0. ~latency:0.
  | Serving | Collecting _ -> (
    (* bad-package crash (§VI-A): shortly after serving begins *)
    match t.role with
    | Consumer p when p.bad && t.time >= t.serve_start +. t.cfg.crash_delay_seconds ->
      t.phase <- Crashed Bad_package;
      record t ~rps:0. ~latency:0.
    | Consumer _ | No_jumpstart | Seeder -> serve t ~dt)

let run t ~until ~dt =
  while t.time < until do
    step t ~dt
  done

let time t = t.time
let boot_seconds t = t.serve_start
let requests_served t = t.req_count_f
let serving t = match t.phase with Serving | Collecting _ -> true | Booting _ | Exited | Crashed _ -> false
let crashed t = match t.phase with Crashed k -> Some k | _ -> None
let current_rps t = t.last_rps
let current_latency t = t.last_latency
let code_bytes t = int_of_float t.code_bytes

let peak_rps t =
  Float.min t.cfg.offered_rps
    (t.cfg.utilization_target *. float_of_int t.cfg.cores *. t.cfg.clock_hz
    /. t.peak_request_cycles)

let rps_series t = t.rps_series
let latency_series t = t.latency_series
let code_series t = t.code_series
let seeder_package t = t.seeder_pkg

let make_package cfg (app : MA.t) ?(quality = 1.0) ?(bad = false) ?(steady_speedup = 1.054)
    ~coverage_target () =
  ignore cfg;
  let n = Array.length app.MA.funcs in
  let effective_target = float_of_int coverage_target *. quality in
  let threshold = log 2. /. Float.max 1. effective_target in
  let covered = Array.map (fun (f : MA.mfunc) -> f.MA.p_touch >= threshold) app.MA.funcs in
  let opt_bytes = ref 0. and compile = ref 0. and bytecode = ref 0 in
  for f = 0 to n - 1 do
    if covered.(f) then begin
      let size = float_of_int app.MA.funcs.(f).MA.size in
      opt_bytes := !opt_bytes +. (size *. Jit.Tiers.code_expansion Jit.Tiers.Optimized);
      compile := !compile +. (size *. Jit.Tiers.compile_cycles_per_byte Jit.Tiers.Optimized);
      bytecode := !bytecode + app.MA.funcs.(f).MA.size
    end
  done;
  {
    covered;
    opt_bytes = int_of_float !opt_bytes;
    compile_cycles = !compile;
    package_bytes = !bytecode / 3;
    steady_speedup;
    quality;
    bad;
  }
