(** Statistical application model for fleet-scale simulation.

    The real generated app ({!Codegen}) is executed instruction-by-
    instruction and is the substrate for the steady-state experiments; it is
    far too slow for simulating 2000-server fleets over simulated hours.
    This module models the application at the granularity the warmup figures
    (paper Figs. 1, 2, 4) actually depend on: a large population of
    compilation units ("functions") with

    - a per-request touch probability [p_touch] (drives the
      coupon-collector discovery dynamics: hot code found in seconds, the
      long tail over ~25 minutes),
    - a bytecode size (drives JIT compile time and code-cache growth),
    - an executed-instruction weight (drives per-request latency under each
      execution mode).

    The population is two-regime — a hot "core" plus a very long tail —
    matching the paper's description of a flat profile where no function
    reaches 1% of cycles yet ~500 MB of code is eventually JITed. *)

type params = {
  seed : int;
  n_funcs : int;
  core_funcs : int;  (** the hot regime *)
  mean_size : int;  (** mean bytecode bytes per function *)
  core_p_max : float;  (** touch probability of the hottest function *)
  core_exponent : float;  (** power-law decay within the core *)
  tail_p_max : float;  (** tail probabilities: log-uniform in [min, max] *)
  tail_p_min : float;
  weight_exponent : float;  (** decay of per-touch instruction weight *)
  instrs_per_request : float;  (** calibrates total work: E[instrs/request] *)
}

(** Calibrated to the paper's regime: ~500 MB total JITed code, optimized
    code finished ~10 min, JITing ceasing ~25 min at typical load.  See
    DESIGN.md §4. *)
val default_params : params

type mfunc = {
  size : int;
  p_touch : float;
  weight : float;  (** bytecode instructions executed per touching request *)
}

type t = { params : params; funcs : mfunc array }

val generate : params -> t

(** Expected distinct functions touched per request (sum of probabilities). *)
val expected_touched : t -> float

(** Total bytecode bytes. *)
val total_size : t -> int

(** [sample_discovery t rng] — for each function, the (1-based) request
    index at which this server first touches it (geometric sampling).  Each
    server draws its own. *)
val sample_discovery : t -> Js_util.Rng.t -> int array

(** [coverage t ~discovered] — fraction of per-request instruction weight
    covered by a predicate over function indices. *)
val coverage : t -> discovered:(int -> bool) -> float

(** [request_weight_moments t] — (mean, stddev) of the per-request executed
    instruction count over the function population (independent Bernoulli
    touches).  The discrete-event simulator draws per-request service
    demand from a lognormal matched to these moments. *)
val request_weight_moments : t -> float * float
