lib/jit/code_cache.mli: Hhbc Vasm
