lib/layout/hotcold.mli: Cfg
