lib/jit/trace_adapter.mli: Code_cache Context
