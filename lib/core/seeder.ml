type outcome = {
  package : Package.t;
  bytes : string;
  profile_requests_steps : int;
}

let run ?telemetry ?(now = 0.) repo (options : Options.t) ~profile_traffic ~optimized_traffic
    ?validation_traffic ?jit_bug ~region ~bucket ~seeder_id () =
  let tel f =
    match telemetry with
    | Some t -> f t
    | None -> ()
  in
  let timed name ~cost f =
    match telemetry with
    | Some t -> Js_telemetry.timed t name ~cost f
    | None -> f ()
  in
  let reject counter stage msg =
    tel (fun t ->
        Js_telemetry.incr t counter;
        Js_telemetry.record t (Js_telemetry.Validation_failed { stage; reason = msg }))
  in
  (* Phase 1: serve requests, JIT profile code, collect tier-1 counters. *)
  let counters = Jit_profile.Counters.create repo in
  let layouts = Mh_runtime.Class_layout.build repo ~reorder:false ~hotness:(fun _ _ -> 0) in
  let heap = Mh_runtime.Heap.create repo layouts in
  let engine = Interp.Engine.create ~probes:(Jit_profile.Collector.probes counters) repo heap in
  let profile_steps =
    timed "seeder.profile"
      ~cost:(fun steps -> float_of_int steps *. 1e-8)
      (fun () ->
        profile_traffic engine;
        Interp.Engine.steps engine)
  in
  (* Phase 2: JIT instrumented optimized code. *)
  let config =
    { (Consumer.compile_config options) with Jit.Compiler.mode = Vasm.Lower.Instrumented }
  in
  let vfuncs =
    timed "seeder.lower"
      ~cost:(fun vfuncs -> float_of_int (List.length vfuncs) *. 1e-4)
      (fun () -> Jit.Compiler.lower_all repo counters config)
  in
  (* Phase 3: serve on instrumented optimized code; collect the Vasm-level
     profile and the tier-2 call graph. *)
  let measured = Jit.Vasm_profile.create () in
  let lookup fid = List.assoc_opt fid vfuncs in
  let probes = Jit.Context.probes repo ~lookup (Jit.Vasm_profile.handler measured) in
  let heap2 = Mh_runtime.Heap.create repo layouts in
  let engine2 = Interp.Engine.create ~probes repo heap2 in
  timed "seeder.instrument"
    ~cost:(fun () -> float_of_int (Interp.Engine.steps engine2) *. 1e-8)
    (fun () -> optimized_traffic engine2);
  (* Phase 4: compute the function order (intermediate JIT result). *)
  let order_config = { config with Jit.Compiler.func_order = Jit.Compiler.C3_tier2 } in
  let func_order =
    Jit.Compiler.function_order counters order_config ~measured:(Some measured) vfuncs
  in
  (* Phase 5: serialize. *)
  let profiled = Jit_profile.Counters.profiled_funcs counters in
  let package =
    {
      Package.meta =
        {
          Package.region;
          bucket;
          seeder_id;
          n_profiled_funcs = List.length profiled;
          total_entries = Jit_profile.Counters.total_entries counters;
          repo_fingerprint = Hhbc.Repo.fingerprint repo;
          published_at = int_of_float now;
        };
      counters = Jit_profile.Counters.copy counters;
      vasm = measured;
      func_order;
      preload_units = Array.of_list (Jit_profile.Counters.touched_units counters);
    }
  in
  let bytes =
    timed "seeder.serialize"
      ~cost:(fun bytes -> float_of_int (String.length bytes) /. 25.0e6)
      (fun () -> Package.to_bytes package)
  in
  let accept () =
    tel (fun t -> Js_telemetry.incr t "seeder.packages_built");
    Ok { package; bytes; profile_requests_steps = profile_steps }
  in
  (* Phase 6: coverage gate (§VI-B). *)
  match Package.check_coverage package options with
  | Error msg ->
    reject "seeder.coverage_rejects" "seeder.coverage_gate" msg;
    Error ("coverage gate: " ^ msg)
  | Ok () ->
    (* Phase 7: self-validation — restart in consumer mode on the freshly
       serialized bytes and require a healthy boot (§VI-A.1). *)
    if not options.Options.validate_packages then accept ()
    else begin
      let invalid msg =
        reject "seeder.validation_rejects" "seeder.validation" msg;
        Error ("validation: " ^ msg)
      in
      match Package.of_bytes repo bytes with
      | Error msg -> invalid ("round-trip failed: " ^ msg)
      | Ok reread -> (
        (* Static verification of the round-tripped package: the same
           consistency pass the consumer applies (§VI-A), run here so a bad
           package burns a seeder rebuild, not a fleet of boot retries. *)
        match Package_check.result repo reread with
        | Error msg ->
          tel (fun t -> Js_telemetry.incr t "verify.package_rejects");
          reject "seeder.verify_rejects" "seeder.verify" msg;
          Error ("verification: " ^ msg)
        | Ok () -> (
          match Consumer.boot_with_package repo options ?jit_bug reread with
          | Error msg -> invalid ("consumer boot failed: " ^ msg)
          | Ok vm -> (
            (* Inline trees in the compiled translations must only reference
               functions that exist and nest at real call sites. *)
            let tree_errors =
              Hashtbl.fold
                (fun _ vf acc ->
                  Js_analysis.Diag.errors (Js_analysis.Verify.check_inline_tree repo vf) @ acc)
                vm.Consumer.compiled.Jit.Compiler.vfuncs []
            in
            match tree_errors with
            | first :: _ ->
              let msg = Js_analysis.Diag.to_string first in
              tel (fun t -> Js_telemetry.incr t "verify.inline_tree_rejects");
              reject "seeder.verify_rejects" "seeder.verify" msg;
              Error ("verification: " ^ msg)
            | [] -> (
              match validation_traffic with
              | None -> accept ()
              | Some traffic -> (
                let check_engine = Consumer.serving_engine vm () in
                try
                  traffic check_engine;
                  accept ()
                with
                | Interp.Engine.Runtime_error msg -> invalid ("unhealthy: " ^ msg)
                | Failure msg -> invalid ("unhealthy: " ^ msg))))))
    end

let run_and_publish ?telemetry ?now repo options store ~profile_traffic ~optimized_traffic
    ?validation_traffic ?jit_bug ~region ~bucket ~seeder_id () =
  match
    run ?telemetry ?now repo options ~profile_traffic ~optimized_traffic ?validation_traffic
      ?jit_bug ~region ~bucket ~seeder_id ()
  with
  | Error _ as e -> e
  | Ok result ->
    Store.publish store ~region ~bucket result.bytes result.package.Package.meta;
    (match telemetry with
    | None -> ()
    | Some t ->
      Js_telemetry.incr t "seeder.published";
      Js_telemetry.record t
        (Js_telemetry.Seeder_published
           { region; bucket; seeder_id; bytes = String.length result.bytes }));
    Ok result
