lib/workload/app_spec.ml:
