lib/hhbc/unit_def.mli: Format Instr
