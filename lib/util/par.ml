let fork_join ~domains f =
  if domains <= 1 then f 0
  else begin
    (* Index 0 runs on the calling domain so [domains = 1] never spawns and a
       d-domain round keeps exactly d domains live. *)
    let spawned = Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> f (i + 1))) in
    let self = try Ok (f 0) with e -> Error e in
    (* Always join every spawned domain — even when the caller's own slice
       failed — so no domain outlives the round. *)
    let joined = Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned in
    let reraise = function Error e -> raise e | Ok () -> () in
    reraise self;
    Array.iter reraise joined
  end

module Mailbox = struct
  type 'a t = { mutable items : 'a list; mutable posted : int }

  let create () = { items = []; posted = 0 }

  let post t x =
    t.items <- x :: t.items;
    t.posted <- t.posted + 1

  let drain t =
    let xs = List.rev t.items in
    t.items <- [];
    xs

  let is_empty t = t.items = []
  let posted t = t.posted
end
