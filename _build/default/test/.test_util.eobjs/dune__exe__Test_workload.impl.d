test/test_workload.ml: Alcotest Array Hhbc Interp Js_util Lazy List Mh_runtime Workload
