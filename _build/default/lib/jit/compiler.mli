(** The tier-2 (region) compilation pipeline.

    Given tier-1 counters — and optionally the measured Vasm profile a
    Jump-Start seeder collected — this module plans inlining, lowers every
    hot function, lays out basic blocks (Ext-TSP with hot/cold splitting, or
    ablation baselines), sorts functions (C3 on the accurate tier-2 call
    graph, or on the inaccurate tier-1 graph, or baselines) and places
    everything in a code cache.

    The three optimization toggles correspond one-to-one to the bars of
    paper Fig. 6 (property reordering lives in {!Mh_runtime.Class_layout}
    and is toggled by the VM layer, not here). *)

type bb_layout = Exttsp | Source_order | Pettis_hansen

type func_order =
  | C3_tier2  (** C3 on the measured translation-level call graph (§V-B) *)
  | C3_tier1  (** C3 on the tier-1 call graph (pre-Jump-Start behaviour) *)
  | By_hotness
  | By_id

type config = {
  inline_params : Inliner.params;
  hot_threshold : float;  (** hot/cold split threshold (fraction of max) *)
  bb_layout : bb_layout;
  use_measured_bb_weights : bool;  (** §V-A toggle *)
  func_order : func_order;
  min_entries : int;  (** functions with fewer profiled entries stay live *)
  mode : Vasm.Lower.mode;
}

(** Production-like defaults with every Jump-Start optimization on. *)
val default_config : config

(** Pre-Jump-Start defaults: estimated weights and the tier-1 call graph. *)
val no_jumpstart_config : config

type compiled = {
  cache : Code_cache.t;
  vfuncs : (Hhbc.Instr.fid, Vasm.Vfunc.t) Hashtbl.t;
  order : Hhbc.Instr.fid array;  (** placement order actually used *)
  n_translations : int;
  n_skipped : int;  (** did not fit in the code cache *)
}

(** [select repo counters ~min_entries] — functions to optimize, hottest
    first. *)
val select : Hhbc.Repo.t -> Jit_profile.Counters.t -> min_entries:int -> Hhbc.Instr.fid list

(** [plan_and_lower repo counters config fid] — inline plan + lowering for a
    single function. *)
val plan_and_lower :
  Hhbc.Repo.t -> Jit_profile.Counters.t -> config -> Hhbc.Instr.fid -> Vasm.Vfunc.t

(** [lower_all repo counters config] — plan + lower every selected function
    (no layout yet).  This is the state in which a seeder instruments the
    optimized code. *)
val lower_all :
  Hhbc.Repo.t -> Jit_profile.Counters.t -> config -> (Hhbc.Instr.fid * Vasm.Vfunc.t) list

(** [function_order counters config ~measured vfuncs] — the placement order
    the configured strategy produces (exposed so seeders can ship it as the
    package's precomputed intermediate result). *)
val function_order :
  Jit_profile.Counters.t ->
  config ->
  measured:Vasm_profile.t option ->
  (Hhbc.Instr.fid * Vasm.Vfunc.t) list ->
  Hhbc.Instr.fid array

(** [finish repo counters config ~measured vfuncs] — lay out, sort and place
    pre-lowered translations.  [measured = None] forces estimated weights
    and the tier-1 call graph regardless of the config toggles.
    [?order] overrides function sorting with a precomputed placement order
    (the "intermediate JIT result" a Jump-Start package ships, paper §IV-B
    category 4); fids absent from [order] are appended in hotness order. *)
val finish :
  Hhbc.Repo.t ->
  Jit_profile.Counters.t ->
  config ->
  measured:Vasm_profile.t option ->
  ?order:Hhbc.Instr.fid array ->
  (Hhbc.Instr.fid * Vasm.Vfunc.t) list ->
  compiled

(** [compile repo counters config ~measured] = [lower_all] + [finish]. *)
val compile :
  Hhbc.Repo.t -> Jit_profile.Counters.t -> config -> measured:Vasm_profile.t option -> compiled

(** Translation lookup for {!Context.probes}. *)
val lookup : compiled -> Hhbc.Instr.fid -> Vasm.Vfunc.t option
