lib/minihack/compile.ml: Array Ast Format Hashtbl Hhbc List Option Parser
