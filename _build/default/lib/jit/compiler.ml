module C = Jit_profile.Counters
module VF = Vasm.Vfunc

type bb_layout = Exttsp | Source_order | Pettis_hansen
type func_order = C3_tier2 | C3_tier1 | By_hotness | By_id

type config = {
  inline_params : Inliner.params;
  hot_threshold : float;
  bb_layout : bb_layout;
  use_measured_bb_weights : bool;
  func_order : func_order;
  min_entries : int;
  mode : Vasm.Lower.mode;
}

let default_config =
  {
    inline_params = Inliner.default_params;
    hot_threshold = 0.002;
    bb_layout = Exttsp;
    use_measured_bb_weights = true;
    func_order = C3_tier2;
    min_entries = 5;
    mode = Vasm.Lower.Optimized;
  }

let no_jumpstart_config =
  { default_config with use_measured_bb_weights = false; func_order = C3_tier1 }

type compiled = {
  cache : Code_cache.t;
  vfuncs : (Hhbc.Instr.fid, VF.t) Hashtbl.t;
  order : Hhbc.Instr.fid array;
  n_translations : int;
  n_skipped : int;
}

let select repo counters ~min_entries =
  List.filter
    (fun fid ->
      C.func_entries counters fid >= min_entries
      && Array.length (Hhbc.Repo.func repo fid).Hhbc.Func.body > 0)
    (C.profiled_funcs counters)

let plan_and_lower repo counters config fid =
  let tree = Inliner.plan repo counters fid config.inline_params in
  Vasm.Lower.lower repo tree ~mode:config.mode

let lower_all repo counters config =
  List.map
    (fun fid -> (fid, plan_and_lower repo counters config fid))
    (select repo counters ~min_entries:config.min_entries)

(* Block layout for one translation. *)
let layout_one repo counters config ~measured vf =
  let cfg =
    match (config.use_measured_bb_weights, measured) with
    | true, Some m -> Vasm_profile.to_cfg m vf
    | true, None | false, _ -> Weights.to_cfg vf (Weights.estimate repo counters vf)
  in
  let order_hot =
    match config.bb_layout with
    | Exttsp -> fun sub -> Layout.Exttsp.layout sub
    | Source_order -> Layout.Baselines.source_order
    | Pettis_hansen -> Layout.Baselines.pettis_hansen
  in
  Layout.Hotcold.arrange cfg ~threshold:config.hot_threshold ~order_hot

(* Function placement order. *)
let function_order counters config ~measured vfuncs =
  let fids = Array.of_list (List.map fst vfuncs) in
  let n = Array.length fids in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i fid -> Hashtbl.replace index_of fid i) fids;
  let size_of = Hashtbl.create n in
  List.iter (fun (fid, vf) -> Hashtbl.replace size_of fid (VF.code_size vf)) vfuncs;
  let samples fid =
    match (config.func_order, measured) with
    | C3_tier2, Some m -> float_of_int (Vasm_profile.entry_count m fid)
    | _ -> float_of_int (C.func_entries counters fid)
  in
  let nodes =
    Array.mapi
      (fun i fid -> { Layout.C3.id = i; size = Hashtbl.find size_of fid; samples = samples fid })
      fids
  in
  let graph =
    match (config.func_order, measured) with
    | C3_tier2, Some m -> Vasm_profile.call_graph m
    | C3_tier2, None | C3_tier1, _ -> C.call_graph counters
    | (By_hotness | By_id), _ -> []
  in
  let arcs =
    Array.of_list
      (List.filter_map
         (fun (caller, callee, count) ->
           match (Hashtbl.find_opt index_of caller, Hashtbl.find_opt index_of callee) with
           | Some c1, Some c2 -> Some { Layout.C3.caller = c1; callee = c2; weight = float_of_int count }
           | _, _ -> None)
         graph)
  in
  let idx_order =
    match config.func_order with
    | C3_tier2 | C3_tier1 -> Layout.C3.order ~nodes ~arcs ()
    | By_hotness -> Layout.Baselines.by_hotness ~nodes
    | By_id -> Layout.Baselines.by_id ~nodes
  in
  Array.map (fun i -> fids.(i)) idx_order

let finish repo counters config ~measured ?order vfuncs =
  let order =
    match order with
    | None -> function_order counters config ~measured vfuncs
    | Some shipped ->
      (* keep only fids we actually lowered, then append any missing ones in
         local hotness order *)
      let have = Hashtbl.create (List.length vfuncs) in
      List.iter (fun (fid, _) -> Hashtbl.replace have fid ()) vfuncs;
      let shipped_set = Hashtbl.create (Array.length shipped) in
      let kept =
        Array.to_list shipped
        |> List.filter (fun fid ->
               if Hashtbl.mem have fid then begin
                 Hashtbl.replace shipped_set fid ();
                 true
               end
               else false)
      in
      let missing = List.filter (fun (fid, _) -> not (Hashtbl.mem shipped_set fid)) vfuncs in
      let missing =
        List.sort (fun (a, _) (b, _) -> compare (C.func_entries counters b) (C.func_entries counters a)) missing
      in
      Array.of_list (kept @ List.map fst missing)
  in
  let by_fid = Hashtbl.create (List.length vfuncs) in
  List.iter (fun (fid, vf) -> Hashtbl.replace by_fid fid vf) vfuncs;
  let cache = Code_cache.create () in
  let skipped = ref 0 in
  Array.iter
    (fun fid ->
      let vf = Hashtbl.find by_fid fid in
      let block_order, n_hot = layout_one repo counters config ~measured vf in
      match Code_cache.place cache vf ~order:block_order ~n_hot with
      | Some _ -> ()
      | None -> incr skipped)
    order;
  {
    cache;
    vfuncs = by_fid;
    order;
    n_translations = List.length vfuncs - !skipped;
    n_skipped = !skipped;
  }

let compile repo counters config ~measured =
  finish repo counters config ~measured (lower_all repo counters config)

let lookup compiled fid = Hashtbl.find_opt compiled.vfuncs fid
