lib/layout/cfg.mli: Format
