module R = Js_util.Rng

type policy = Random | Round_robin | Least_outstanding | Warmup_weighted

let policy_to_string = function
  | Random -> "random"
  | Round_robin -> "round_robin"
  | Least_outstanding -> "least_outstanding"
  | Warmup_weighted -> "warmup_weighted"

let policy_of_string = function
  | "random" -> Some Random
  | "round_robin" | "round-robin" | "rr" -> Some Round_robin
  | "least_outstanding" | "least-outstanding" | "lo" -> Some Least_outstanding
  | "warmup_weighted" | "warmup-weighted" | "aware" | "warmup" -> Some Warmup_weighted
  | _ -> None

let all_policies = [ Random; Round_robin; Least_outstanding; Warmup_weighted ]

type t = { policy : policy; mutable cursor : int }

let create policy = { policy; cursor = 0 }
let policy t = t.policy

let pick t rng ?n ~candidates ~outstanding ~capacity () =
  let n = match n with Some n -> n | None -> Array.length candidates in
  if n = 0 then None
  else
    match t.policy with
    | Random -> Some candidates.(R.int rng n)
    | Round_robin ->
      let i = t.cursor mod n in
      t.cursor <- t.cursor + 1;
      Some candidates.(i)
    | Least_outstanding ->
      let best = ref candidates.(0) in
      let best_o = ref (outstanding candidates.(0)) in
      for i = 1 to n - 1 do
        let o = outstanding candidates.(i) in
        if o < !best_o then begin
          best := candidates.(i);
          best_o := o
        end
      done;
      Some !best
    | Warmup_weighted ->
      let weights =
        Array.init n (fun i -> Float.max 1e-9 (capacity candidates.(i)))
      in
      Some candidates.(R.sample_weighted rng weights)

(* Cross-region spillover target: round-robin over the currently-up foreign
   regions, deterministic given [cursor].  Returns the chosen region plus the
   advanced cursor, or [None] when no foreign region is up. *)
let pick_region ~home ~n_regions ~cursor ~up =
  if n_regions <= 1 then None
  else begin
    let chosen = ref None in
    let k = ref 0 in
    while !chosen = None && !k < n_regions do
      let r = (cursor + !k) mod n_regions in
      if r <> home && up r then chosen := Some r;
      incr k
    done;
    match !chosen with
    | None -> None
    | Some r -> Some (r, (cursor + !k) mod n_regions)
  end
