lib/cluster/fleet.ml: Array Float Format Hashtbl Js_util List Server
