lib/interp/probes.mli: Hhbc
