type params = {
  forward_window : int;
  backward_window : int;
  forward_scale : float;
  backward_scale : float;
  max_chain_split : int;
}

let default_params =
  {
    forward_window = 1024;
    backward_window = 640;
    forward_scale = 0.1;
    backward_scale = 0.1;
    max_chain_split = 128;
  }

(* Score contribution of one arc given the layout byte offsets of its
   endpoints.  [src_end] is the address just past the source block; [dst]
   the address of the target block. *)
let arc_score params ~weight ~src_end ~dst =
  if dst = src_end then weight
  else if dst > src_end then begin
    let gap = dst - src_end in
    if gap <= params.forward_window then
      params.forward_scale *. weight *. (1. -. (float_of_int gap /. float_of_int params.forward_window))
    else 0.
  end
  else begin
    let gap = src_end - dst in
    if gap <= params.backward_window then
      params.backward_scale *. weight *. (1. -. (float_of_int gap /. float_of_int params.backward_window))
    else 0.
  end

let score ?(params = default_params) cfg order =
  let blocks = Cfg.blocks cfg in
  let n = Array.length blocks in
  if Array.length order <> n then invalid_arg "Exttsp.score: order length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun id ->
      if id < 0 || id >= n || seen.(id) then invalid_arg "Exttsp.score: not a permutation";
      seen.(id) <- true)
    order;
  (* byte offset of each block start and end under [order] *)
  let start = Array.make n 0 in
  let stop = Array.make n 0 in
  let off = ref 0 in
  Array.iter
    (fun id ->
      start.(id) <- !off;
      off := !off + blocks.(id).Cfg.size;
      stop.(id) <- !off)
    order;
  Array.fold_left
    (fun acc (a : Cfg.arc) ->
      if a.src = a.dst then acc (* self-loops always score as backward jump of size src *)
      else acc +. arc_score params ~weight:a.weight ~src_end:stop.(a.src) ~dst:start.(a.dst))
    0. (Cfg.arcs cfg)

(* --- greedy chain merging --- *)

type chain = {
  cid : int;
  mutable blocks_seq : int array;  (** layout order within the chain *)
  mutable size : int;
  mutable weight : float;
  mutable alive : bool;
}

(* Evaluate the Ext-TSP score restricted to arcs internal to a hypothetical
   ordered block sequence. *)
let seq_score params cfg block_sizes in_seq seq =
  (* offsets within the sequence *)
  let start = Hashtbl.create (Array.length seq * 2) in
  let stop = Hashtbl.create (Array.length seq * 2) in
  let off = ref 0 in
  Array.iter
    (fun id ->
      Hashtbl.replace start id !off;
      off := !off + block_sizes.(id);
      Hashtbl.replace stop id !off)
    seq;
  let acc = ref 0. in
  Array.iter
    (fun id ->
      List.iter
        (fun (a : Cfg.arc) ->
          if a.src <> a.dst && in_seq a.dst then
            acc :=
              !acc
              +. arc_score params ~weight:a.weight ~src_end:(Hashtbl.find stop a.src)
                   ~dst:(Hashtbl.find start a.dst))
        (Cfg.succs cfg id))
    seq;
  !acc

let layout ?(params = default_params) cfg =
  let blocks = Cfg.blocks cfg in
  let n = Array.length blocks in
  if n = 0 then [||]
  else if n = 1 then [| 0 |]
  else begin
    let entry = Cfg.entry cfg in
    let block_sizes = Array.map (fun b -> b.Cfg.size) blocks in
    let chains = Array.init n (fun i ->
        { cid = i; blocks_seq = [| i |]; size = blocks.(i).Cfg.size; weight = blocks.(i).Cfg.weight; alive = true })
    in
    let chain_of = Array.init n (fun i -> i) in
    let member = Array.make n false in
    (* score of a chain's internal arcs, cached *)
    let chain_score = Array.make n 0. in
    let compute_chain_score c =
      Array.iter (fun id -> member.(id) <- true) c.blocks_seq;
      let s = seq_score params cfg block_sizes (fun id -> member.(id)) c.blocks_seq in
      Array.iter (fun id -> member.(id) <- false) c.blocks_seq;
      s
    in
    (* candidate merged sequences of chains x (receiver) and y *)
    let merge_candidates x y =
      let xs = x.blocks_seq and ys = y.blocks_seq in
      let base = [ Array.append xs ys; Array.append ys xs ] in
      let with_splits =
        if Array.length xs <= params.max_chain_split && Array.length xs > 1 then begin
          (* insert y at each interior split point of x *)
          let variants = ref [] in
          for cut = 1 to Array.length xs - 1 do
            let x1 = Array.sub xs 0 cut and x2 = Array.sub xs cut (Array.length xs - cut) in
            variants := Array.concat [ x1; ys; x2 ] :: !variants
          done;
          !variants
        end
        else []
      in
      base @ with_splits
    in
    (* entry block must stay first: reject candidates placing anything before it *)
    let valid_seq seq = if Array.exists (fun id -> id = entry) seq then seq.(0) = entry else true in
    let best_merge x y =
      let joint_member id = member.(id) in
      Array.iter (fun id -> member.(id) <- true) x.blocks_seq;
      Array.iter (fun id -> member.(id) <- true) y.blocks_seq;
      let best = ref None in
      List.iter
        (fun seq ->
          if valid_seq seq then begin
            let s = seq_score params cfg block_sizes joint_member seq in
            match !best with
            | Some (bs, _) when bs >= s -> ()
            | _ -> best := Some (s, seq)
          end)
        (merge_candidates x y);
      Array.iter (fun id -> member.(id) <- false) x.blocks_seq;
      Array.iter (fun id -> member.(id) <- false) y.blocks_seq;
      match !best with
      | None -> None
      | Some (s, seq) ->
        let gain = s -. chain_score.(x.cid) -. chain_score.(y.cid) in
        if gain > 1e-9 then Some (gain, seq) else None
    in
    Array.iter (fun c -> chain_score.(c.cid) <- compute_chain_score c) chains;
    (* Only chain pairs connected by at least one arc are merge candidates. *)
    let connected = Hashtbl.create 64 in
    let note_pair a b = if a <> b then Hashtbl.replace connected (min a b, max a b) () in
    Array.iter (fun (a : Cfg.arc) -> note_pair chain_of.(a.src) chain_of.(a.dst)) (Cfg.arcs cfg);
    let rec iterate () =
      (* find the best gain over all connected alive chain pairs *)
      let best = ref None in
      Hashtbl.iter
        (fun (ca, cb) () ->
          let x = chains.(ca) and y = chains.(cb) in
          if x.alive && y.alive && x.cid <> y.cid then
            match best_merge x y with
            | None -> ()
            | Some (gain, seq) -> (
              match !best with
              | Some (bg, _, _, _) when bg >= gain -> ()
              | _ -> best := Some (gain, x, y, seq)))
        connected;
      match !best with
      | None -> ()
      | Some (_, x, y, seq) ->
        (* merge y into x with the winning sequence *)
        x.blocks_seq <- seq;
        x.size <- x.size + y.size;
        x.weight <- x.weight +. y.weight;
        y.alive <- false;
        Array.iter (fun id -> chain_of.(id) <- x.cid) seq;
        chain_score.(x.cid) <- compute_chain_score x;
        (* re-point connectivity of y to x *)
        let to_add = ref [] in
        Hashtbl.iter
          (fun (ca, cb) () ->
            if ca = y.cid || cb = y.cid then begin
              let other = if ca = y.cid then cb else ca in
              if other <> x.cid then to_add := other :: !to_add
            end)
          connected;
        List.iter (fun other -> note_pair x.cid other) !to_add;
        iterate ()
    in
    iterate ();
    (* Emit: entry chain first, then remaining chains by decreasing density. *)
    let alive = Array.to_list chains |> List.filter (fun c -> c.alive) in
    let entry_chain = List.find (fun c -> chain_of.(entry) = c.cid) alive in
    let rest = List.filter (fun c -> c.cid <> entry_chain.cid) alive in
    let density c = if c.size = 0 then 0. else c.weight /. float_of_int c.size in
    let rest =
      List.sort
        (fun a b ->
          let c = compare (density b) (density a) in
          if c <> 0 then c else compare a.cid b.cid)
        rest
    in
    Array.concat (List.map (fun c -> c.blocks_seq) (entry_chain :: rest))
  end
