lib/layout/exttsp.ml: Array Cfg Hashtbl List
