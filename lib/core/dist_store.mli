(** Simulated distribution network in front of {!Store} (micro level).

    The paper's packages travel through a real distributed-storage service:
    fetches have latency, fail transiently, time out, and can return {e
    stale} profiles from a previous release.  This module wraps a {!Store}
    with that delivery model so the consumer boot path exercises it for
    real:

    - {b network model}: per-fetch transient failure probability, a
      latency distribution (exponential body with an optional Pareto tail,
      reusing {!Js_util.Rng}), and a per-attempt timeout;
    - {b fetch policy}: bounded retries with exponential backoff and
      deterministic jitter ({!Js_util.Backoff}) against the home region,
      then one cross-region fallback fetch per foreign region, then give up
      (the caller degrades to a no-Jump-Start boot);
    - {b staleness gate}: a delivered package is rejected — without
      retrying, the reject feeds the consumer's [Validation_failed] retry
      machinery as stage [consumer.fetch] — when its
      {!Package.meta.repo_fingerprint} disagrees with the consumer's repo,
      when its age exceeds the TTL, or when the replica is forced stale by
      the [stale_rate] fault injection.

    Determinism: every stochastic draw is guarded by its rate, so an
    all-zero network consumes exactly the one selection draw {!Store}
    itself performs and the run stays byte-identical to a direct store
    fetch.

    With [telemetry], attempts bump [dist.fetch_attempts] (plus
    [dist.cross_region] for foreign-region attempts), failures
    [dist.fetch_failures], timeouts [dist.timeouts], gate rejects
    [dist.stale_rejects] plus the per-kind counter
    ([dist.fingerprint_mismatch] / [dist.ttl_expired] /
    [dist.stale_replica]); a delivery observes its latency in the
    [dist.fetch_seconds] histogram, and the accumulated wait (latencies,
    timeouts, backoff) advances the clock under a [dist.fetch_wait] span. *)

type network = {
  fetch_fail_rate : float;  (** probability one attempt fails outright *)
  fetch_timeout : float;  (** per-attempt timeout in seconds; 0 = none *)
  latency_mean : float;  (** mean fetch latency; 0 = instantaneous *)
  tail_prob : float;  (** probability a latency sample comes from the tail *)
  tail_alpha : float;  (** Pareto shape of the latency tail *)
  stale_rate : float;  (** probability a replica serves a stale package *)
}

(** All rates/latencies zero: a perfect, instantaneous network. *)
val default_network : network

(** Does this network model any fault or latency at all?  When [false], a
    fetch draws exactly as much randomness as {!Store.pick_random}. *)
val network_active : network -> bool

type t

(** [create store] wraps [store].  [repo] enables the fingerprint gate
    (packages hashed against a different build are rejected);
    [ttl_seconds > 0] enables the TTL gate; [regions]/[cross_region]
    configure the fallback ladder ([regions] lists every region replicas
    live in, home first or not — the home region passed to {!fetch} is
    skipped). *)
val create :
  ?network:network ->
  ?backoff:Js_util.Backoff.config ->
  ?ttl_seconds:float ->
  ?cross_region:bool ->
  ?regions:int array ->
  ?repo:Hhbc.Repo.t ->
  Store.t ->
  t

val store : t -> Store.t
val active : t -> bool

(** Why the staleness gate refused a delivered package.  Only
    [Fingerprint_mismatch] is salvageable: the payload is a well-formed
    package for a {e different build} of this application, which the
    stale-profile matcher can re-anchor; an expired or replica-served stale
    package is simply old data. *)
type reject_kind = Stale_replica | Fingerprint_mismatch | Ttl_expired

type fetch_result =
  | Delivered of { bytes : string; meta : Package.meta; region : int; delay : float }
      (** a usable package, after [delay] seconds of fetch latency/retries *)
  | Rejected of {
      kind : reject_kind;
      reason : string;
      bytes : string;  (** the delivered payload — kept for the salvage path *)
      meta : Package.meta;
      delay : float;
    }
      (** delivered but refused by the staleness gate — burns a consumer
          boot attempt (stage [consumer.fetch]) unless the consumer salvages
          a [Fingerprint_mismatch] via {!Package.of_bytes_stale} *)
  | Unavailable of { reason : string; delay : float }
      (** retries and cross-region fallback exhausted — the consumer
          degrades gracefully to a no-Jump-Start boot *)
  | No_package  (** no replica in any reachable region holds a package *)

(** [fetch t rng ~now ~region ~bucket] runs the full fetch ladder.  [now] is
    the consumer's boot time on the simulated clock (drives the TTL gate). *)
val fetch :
  ?telemetry:Js_telemetry.t ->
  t ->
  Js_util.Rng.t ->
  now:float ->
  region:int ->
  bucket:int ->
  fetch_result
