lib/jit/weights.mli: Hhbc Jit_profile Layout Vasm
