lib/vasm/lower.ml: Array Hashtbl Hhbc Inline_tree List Vfunc
