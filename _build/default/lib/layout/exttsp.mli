(** Ext-TSP basic-block reordering (Newell & Pupyrev, IEEE TC 2020), the
    algorithm HHVM uses for basic-block layout and that paper §V-A improves
    with accurate Vasm-level counters.

    The objective extends fall-through maximization ("TSP") with partial
    credit for short forward and backward jumps:

    - fall-through (gap 0): full arc weight;
    - forward jump with gap [0 < d <= 1024]: [0.1 * w * (1 - d/1024)];
    - backward jump with gap [0 < d <= 640]:  [0.1 * w * (1 - d/640)].

    The optimizer greedily merges chains of blocks, considering both
    concatenation orders and splitting the receiving chain, until no merge
    improves the score; remaining chains are emitted entry-chain first, then
    by decreasing density. *)

(** Scoring parameters; {!default_params} matches the published constants. *)
type params = {
  forward_window : int;
  backward_window : int;
  forward_scale : float;
  backward_scale : float;
  max_chain_split : int;
      (** chains longer than this are not considered for splitting *)
}

val default_params : params

(** [score ?params cfg order] evaluates the Ext-TSP objective of a layout.
    [order] is a permutation of all block ids.
    @raise Invalid_argument if [order] is not a permutation. *)
val score : ?params:params -> Cfg.t -> int array -> float

(** [layout ?params cfg] computes a block order with the entry block first.
    Only the blocks of [cfg] are permuted; callers handle hot/cold splitting
    separately (see {!Hotcold}). *)
val layout : ?params:params -> Cfg.t -> int array
