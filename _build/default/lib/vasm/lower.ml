module I = Hhbc.Instr

type mode = Optimized | Instrumented

let instrumentation_bytes = 8

let instr_size = function
  | I.Nop -> 0
  | I.LitInt _ -> 5
  | I.LitFloat _ -> 8
  | I.LitBool _ -> 4
  | I.LitNull -> 4
  | I.LitStr _ -> 7
  | I.LitArr _ -> 10
  | I.LoadLoc _ -> 4
  | I.StoreLoc _ -> 4
  | I.Pop -> 0
  | I.Dup -> 3
  | I.BinOp _ -> 8
  | I.UnOp _ -> 6
  | I.Jmp _ -> 5
  | I.JmpZ _ -> 8
  | I.JmpNZ _ -> 8
  | I.Call _ -> 12
  | I.CallMethod _ -> 18
  | I.New _ -> 26
  | I.GetThis -> 3
  | I.GetProp _ -> 14
  | I.SetProp _ -> 16
  | I.NewVec _ -> 14
  | I.VecGet -> 16
  | I.VecSet -> 18
  | I.VecPush -> 18
  | I.VecLen -> 8
  | I.NewDict _ -> 18
  | I.DictGet -> 18
  | I.DictSet -> 20
  | I.DictHas -> 14
  | I.InstanceOf _ -> 10
  | I.Cast _ -> 8
  | I.Print -> 12
  | I.Ret -> 6

(* Guard size replacing an inlined call (class check / frame setup). *)
let inline_guard_size = 8

let is_dynamic = function
  | I.CallMethod _ | I.GetProp _ | I.SetProp _ | I.VecGet | I.VecSet | I.VecPush | I.DictGet
  | I.DictSet | I.DictHas | I.Cast _ | I.New _ ->
    true
  | I.Nop | I.LitInt _ | I.LitFloat _ | I.LitBool _ | I.LitNull | I.LitStr _ | I.LitArr _
  | I.LoadLoc _ | I.StoreLoc _ | I.Pop | I.Dup | I.BinOp _ | I.UnOp _ | I.Jmp _ | I.JmpZ _
  | I.JmpNZ _ | I.Call _ | I.GetThis | I.NewVec _ | I.NewDict _ | I.VecLen | I.InstanceOf _
  | I.Print | I.Ret ->
    false

let dynamic_ops body ~start ~len =
  let count = ref 0 in
  for i = start to start + len - 1 do
    if is_dynamic body.(i) then incr count
  done;
  !count

(* mutable staging record for a block being built *)
type proto = {
  p_id : int;
  mutable p_size : int;
  mutable p_succs : int list;
  p_node : int;
  p_bb : int;
  p_role : Vfunc.role;
}

let lower repo tree ~mode =
  let protos = ref [] in
  let n_protos = ref 0 in
  let main_of = Hashtbl.create 64 in
  let slow_of = Hashtbl.create 16 in
  let instr_overhead = match mode with Optimized -> 0 | Instrumented -> instrumentation_bytes in
  let new_proto ~node ~bb ~role ~size =
    let p = { p_id = !n_protos; p_size = size + instr_overhead; p_succs = []; p_node = node; p_bb = bb; p_role = role } in
    incr n_protos;
    protos := p :: !protos;
    p
  in
  (* Pass 1: create main blocks (and slow blocks) for every (node, bb). *)
  let node_blocks =
    Array.map
      (fun (n : Inline_tree.node) ->
        let f = Hhbc.Repo.func repo n.Inline_tree.fid in
        let bbs = Hhbc.Func.basic_blocks f in
        Array.map
          (fun (bb : Hhbc.Func.block) ->
            let body = f.Hhbc.Func.body in
            (* size: lowered instrs; inlined call sites contribute a guard
               instead of the call sequence *)
            let size = ref 0 in
            let dyn = ref 0 in
            for i = bb.start to bb.start + bb.len - 1 do
              let inlined = Inline_tree.child_at tree n.Inline_tree.node_id i <> None in
              if inlined then size := !size + inline_guard_size
              else begin
                size := !size + instr_size body.(i);
                if is_dynamic body.(i) then incr dyn
              end
            done;
            let main = new_proto ~node:n.Inline_tree.node_id ~bb:bb.Hhbc.Func.bb_id ~role:Vfunc.Main ~size:!size in
            Hashtbl.replace main_of (n.Inline_tree.node_id, bb.Hhbc.Func.bb_id) main.p_id;
            (* guards from inlined sites also need a side exit *)
            let has_inlined_site =
              let rec scan i =
                i < bb.start + bb.len
                && (Inline_tree.child_at tree n.Inline_tree.node_id i <> None || scan (i + 1))
              in
              scan bb.start
            in
            if !dyn > 0 || has_inlined_site then begin
              let slow = new_proto ~node:n.Inline_tree.node_id ~bb:bb.Hhbc.Func.bb_id ~role:Vfunc.Slow ~size:(20 + (6 * !dyn)) in
              Hashtbl.replace slow_of (n.Inline_tree.node_id, bb.Hhbc.Func.bb_id) slow.p_id
            end;
            bb)
          bbs)
      (Inline_tree.nodes tree)
  in
  let proto_arr = Array.of_list (List.rev !protos) in
  Array.iteri (fun i p -> assert (p.p_id = i)) proto_arr;
  (* Pass 2: connect successors. *)
  Array.iteri
    (fun node_id bbs ->
      let n = Inline_tree.node tree node_id in
      let f = Hhbc.Repo.func repo n.Inline_tree.fid in
      let body = f.Hhbc.Func.body in
      Array.iter
        (fun (bb : Hhbc.Func.block) ->
          let main = proto_arr.(Hashtbl.find main_of (node_id, bb.Hhbc.Func.bb_id)) in
          (* bytecode CFG successors *)
          let cfg_succs =
            List.map (fun s -> Hashtbl.find main_of (node_id, s)) bb.Hhbc.Func.succs
          in
          (* inlined callee entries from sites within this bb *)
          let callee_entries = ref [] in
          let returns_here = ref [] in
          for i = bb.start to bb.start + bb.len - 1 do
            match Inline_tree.child_at tree node_id i with
            | None -> ()
            | Some child ->
              let child_fid = child.Inline_tree.fid in
              let child_f = Hhbc.Repo.func repo child_fid in
              let child_bbs = Hhbc.Func.basic_blocks child_f in
              callee_entries :=
                Hashtbl.find main_of (child.Inline_tree.node_id, 0) :: !callee_entries;
              (* callee blocks ending in Ret flow back to this block *)
              Array.iter
                (fun (cbb : Hhbc.Func.block) ->
                  let last = child_f.Hhbc.Func.body.(cbb.start + cbb.len - 1) in
                  if last = I.Ret then
                    returns_here := Hashtbl.find main_of (child.Inline_tree.node_id, cbb.Hhbc.Func.bb_id) :: !returns_here)
                child_bbs
          done;
          let slow = Hashtbl.find_opt slow_of (node_id, bb.Hhbc.Func.bb_id) in
          (* append: return arcs from inlined callees may already be here *)
          main.p_succs <-
            main.p_succs @ cfg_succs @ List.rev !callee_entries
            @ (match slow with Some s -> [ s ] | None -> []);
          List.iter
            (fun ret_block -> proto_arr.(ret_block).p_succs <- proto_arr.(ret_block).p_succs @ [ main.p_id ])
            (List.rev !returns_here);
          ignore body)
        bbs)
    node_blocks;
  let blocks =
    Array.map
      (fun p ->
        {
          Vfunc.id = p.p_id;
          size = p.p_size;
          succs = p.p_succs;
          node = p.p_node;
          bb = p.p_bb;
          role = p.p_role;
        })
      proto_arr
  in
  {
    Vfunc.root_fid = (Inline_tree.root tree).Inline_tree.fid;
    tree;
    blocks;
    entry = Hashtbl.find main_of (0, 0);
    main_of;
    slow_of;
  }
