type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits mapped to [0,1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. 0x1p-53

let float t bound = unit_float t *. bound

let bool t p =
  if p <= 0. then false
  else if p >= 1. then true
  else unit_float t < p

let exponential t ~mean =
  let u = 1. -. unit_float t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let rec non_zero () =
    let u = unit_float t in
    if u = 0. then non_zero () else u
  in
  let u1 = non_zero () and u2 = unit_float t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let pareto t ~alpha ~x_min =
  let u = 1. -. unit_float t in
  x_min /. (u ** (1. /. alpha))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  (* Inverse-CDF sampling over the harmonic weights; O(log n) via a cached
     prefix table would be faster, but n is small enough in practice and the
     rejection-free approach keeps the generator allocation-free. *)
  let h = ref 0. in
  for k = 1 to n do
    h := !h +. (1. /. (float_of_int k ** s))
  done;
  let target = unit_float t *. !h in
  let rec scan k acc =
    if k > n then n - 1
    else
      let acc = acc +. (1. /. (float_of_int k ** s)) in
      if acc >= target then k - 1 else scan (k + 1) acc
  in
  scan 1 0.

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_weighted t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.sample_weighted: non-positive total";
  let target = unit_float t *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if acc >= target then i else scan (i + 1) acc
  in
  scan 0 0.
