type t =
  | INT of int
  | FLOAT of float
  | STRING of string
  | VAR of string
  | IDENT of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ARROW
  | FATARROW
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | DOT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | EOF

type pos = { line : int; col : int }
type located = { token : t; pos : pos }

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | VAR v -> "$" ^ v
  | IDENT s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | ARROW -> "->"
  | FATARROW -> "=>"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | DOT -> "."
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | EOF -> "<eof>"
