test/test_interp.ml: Alcotest Array Hhbc Interp Jit_profile List Mh_runtime Minihack Option Printf String
