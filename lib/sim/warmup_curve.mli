(** Warmup capacity curves for the discrete-event simulator, extracted from
    the macro server model.

    The DES models request service times, not JIT internals.  To make a
    server's instantaneous capacity follow its warmup state, a reference
    {!Cluster.Server} is run offline for each boot mode (no-Jump-Start, or
    consumer of a specific package) and its per-tick mean latency is
    recorded {e keyed by requests served} and normalized by the steady-state
    latency.  The DES then inflates each request's service time by
    [multiplier ~served], where [served] is the macro-equivalent request
    count — warmup progress is request-driven (discovery, profiling window),
    so requests-served is the natural domain, independent of the load the
    DES happens to offer. *)

type t

(** [build ?horizon cfg app role] runs a reference server for [horizon]
    simulated seconds (default 1800) and extracts its curve.  A [Consumer]
    of a bad package is defused ([bad = false]) for the reference run: the
    DES injects the crash itself. *)
val build : ?horizon:float -> Cluster.Server.config -> Workload.Macro_app.t -> Cluster.Server.js_role -> t

(** Boot span of the reference server (restart to first request). *)
val boot_seconds : t -> float

(** Steady-state capacity of the reference server (macro RPS); the DES uses
    [peak_rps / warm_rps] as the macro-equivalent scale per DES request. *)
val peak_rps : t -> float

(** Requests the reference server had served by the horizon — a "fully
    warm" served-count for pre-push fleet members. *)
val warm_served : t -> float

(** [multiplier t ~served] — service-time inflation at [served] macro
    requests; >= 1, clamped to the recorded range, 1 on a degenerate
    (never-served) curve. *)
val multiplier : t -> served:float -> float

(** Memoized curves over one (config, app): one no-Jump-Start slot plus one
    per package (physical identity). *)
type cache

val create_cache : ?horizon:float -> Cluster.Server.config -> Workload.Macro_app.t -> cache
val get : cache -> Cluster.Server.js_role -> t
