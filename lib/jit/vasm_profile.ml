module VF = Vasm.Vfunc

type t = {
  blocks : (int, float array) Hashtbl.t;  (* root fid -> per-block counts *)
  arcs : (int, (int * int, float ref) Hashtbl.t) Hashtbl.t;
  cg : (int * int, int ref) Hashtbl.t;
  entries : (int, int ref) Hashtbl.t;
}

let create () =
  { blocks = Hashtbl.create 64; arcs = Hashtbl.create 64; cg = Hashtbl.create 64; entries = Hashtbl.create 64 }

let block_array t (vf : VF.t) =
  match Hashtbl.find_opt t.blocks vf.VF.root_fid with
  | Some a when Array.length a = VF.n_blocks vf -> a
  | Some _ | None ->
    let a = Array.make (VF.n_blocks vf) 0. in
    Hashtbl.replace t.blocks vf.VF.root_fid a;
    a

let arc_table t (vf : VF.t) =
  match Hashtbl.find_opt t.arcs vf.VF.root_fid with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 32 in
    Hashtbl.replace t.arcs vf.VF.root_fid tbl;
    tbl

let handler t =
  {
    Context.on_vblock =
      (fun vf blk ->
        let a = block_array t vf in
        a.(blk) <- a.(blk) +. 1.);
    on_varc =
      (fun vf ~src ~dst ->
        let tbl = arc_table t vf in
        match Hashtbl.find_opt tbl (src, dst) with
        | Some r -> r := !r +. 1.
        | None -> Hashtbl.add tbl (src, dst) (ref 1.));
    on_xcall =
      (fun ~caller ~callee ->
        (match Hashtbl.find_opt t.entries callee with
        | Some r -> incr r
        | None -> Hashtbl.add t.entries callee (ref 1));
        match caller with
        | None -> ()
        | Some c -> (
          match Hashtbl.find_opt t.cg (c, callee) with
          | Some r -> incr r
          | None -> Hashtbl.add t.cg (c, callee) (ref 1)));
    on_untranslated = (fun _ _ -> ());
    on_prop = (fun ~addr:_ ~write:_ -> ());
  }

let block_weights t vf = Array.copy (block_array t vf)

let arc_weight t (vf : VF.t) key =
  match Hashtbl.find_opt t.arcs vf.VF.root_fid with
  | None -> 0.
  | Some tbl -> ( match Hashtbl.find_opt tbl key with Some r -> !r | None -> 0.)

let to_cfg t (vf : VF.t) =
  let counts = block_array t vf in
  let blocks =
    Array.map (fun (b : VF.block) -> { Layout.Cfg.id = b.VF.id; size = b.VF.size; weight = counts.(b.VF.id) }) vf.VF.blocks
  in
  let arcs =
    Array.map (fun (src, dst) -> { Layout.Cfg.src; dst; weight = arc_weight t vf (src, dst) }) (VF.arcs vf)
  in
  Layout.Cfg.create ~blocks ~arcs ~entry:vf.VF.entry

let call_graph t =
  Hashtbl.fold (fun (caller, callee) r acc -> (caller, callee, !r) :: acc) t.cg [] |> List.sort compare

let entry_count t fid = match Hashtbl.find_opt t.entries fid with Some r -> !r | None -> 0

let profiled_blocks t =
  Hashtbl.fold (fun fid a acc -> (fid, Array.copy a) :: acc) t.blocks [] |> List.sort compare

let profiled_arcs t =
  Hashtbl.fold
    (fun fid tbl acc ->
      let entries = Hashtbl.fold (fun (s, d) c acc -> (s, d, !c) :: acc) tbl [] in
      (fid, List.sort compare entries) :: acc)
    t.arcs []
  |> List.sort compare

let entry_counts t =
  Hashtbl.fold (fun fid c acc -> (fid, !c) :: acc) t.entries [] |> List.sort compare

(* Stale-profile salvage: re-key every per-root-function table through the
   old-fid -> new-fid map.  Entries whose root (or either call-graph
   endpoint) does not map are dropped; block/arc indices are kept verbatim —
   the caller only remaps strict-identical matches, whose translations
   re-lower to the same shape, and Package_check's self-shape pass (P310/
   P311) guards the rest. *)
let remap t ~f =
  let out = create () in
  Hashtbl.iter
    (fun fid a -> match f fid with Some n -> Hashtbl.replace out.blocks n a | None -> ())
    t.blocks;
  Hashtbl.iter
    (fun fid tbl -> match f fid with Some n -> Hashtbl.replace out.arcs n tbl | None -> ())
    t.arcs;
  Hashtbl.iter
    (fun (a, b) c ->
      match (f a, f b) with
      | Some na, Some nb -> Hashtbl.replace out.cg (na, nb) c
      | _ -> ())
    t.cg;
  Hashtbl.iter
    (fun fid c -> match f fid with Some n -> Hashtbl.replace out.entries n c | None -> ())
    t.entries;
  out

module W = Js_util.Binio.Writer
module Rd = Js_util.Binio.Reader

let serialize t w =
  let blocks = Hashtbl.fold (fun fid a acc -> (fid, a) :: acc) t.blocks [] in
  W.list w
    (fun (fid, counts) ->
      W.varint w fid;
      W.array w (fun c -> W.f64 w c) counts)
    (List.sort compare blocks);
  let arcs =
    Hashtbl.fold
      (fun fid tbl acc ->
        let entries = Hashtbl.fold (fun (s, d) c acc -> (s, d, !c) :: acc) tbl [] in
        (fid, List.sort compare entries) :: acc)
      t.arcs []
  in
  W.list w
    (fun (fid, entries) ->
      W.varint w fid;
      W.list w
        (fun (s, d, c) ->
          W.varint w s;
          W.varint w d;
          W.f64 w c)
        entries)
    (List.sort compare arcs);
  let cg = Hashtbl.fold (fun (a, b) c acc -> (a, b, !c) :: acc) t.cg [] in
  W.list w
    (fun (a, b, c) ->
      W.varint w a;
      W.varint w b;
      W.varint w c)
    (List.sort compare cg);
  let entries = Hashtbl.fold (fun fid c acc -> (fid, !c) :: acc) t.entries [] in
  W.list w
    (fun (fid, c) ->
      W.varint w fid;
      W.varint w c)
    (List.sort compare entries)

let deserialize ?n_funcs r =
  let t = create () in
  let check_fid fid =
    match n_funcs with
    | Some n when fid < 0 || fid >= n ->
      raise (Js_util.Binio.Corrupt "vasm profile: function id out of range")
    | _ -> ()
  in
  List.iter
    (fun (fid, counts) ->
      check_fid fid;
      Hashtbl.replace t.blocks fid counts)
    (Rd.list r (fun r ->
         let fid = Rd.varint r in
         let counts = Rd.array r (fun r -> Rd.f64 r) in
         (fid, counts)));
  List.iter
    (fun (fid, entries) ->
      check_fid fid;
      let tbl = Hashtbl.create (List.length entries) in
      List.iter (fun (s, d, c) -> Hashtbl.replace tbl (s, d) (ref c)) entries;
      Hashtbl.replace t.arcs fid tbl)
    (Rd.list r (fun r ->
         let fid = Rd.varint r in
         let entries =
           Rd.list r (fun r ->
               let s = Rd.varint r in
               let d = Rd.varint r in
               let c = Rd.f64 r in
               (s, d, c))
         in
         (fid, entries)));
  List.iter
    (fun (a, b, c) ->
      check_fid a;
      check_fid b;
      Hashtbl.replace t.cg (a, b) (ref c))
    (Rd.list r (fun r ->
         let a = Rd.varint r in
         let b = Rd.varint r in
         let c = Rd.varint r in
         (a, b, c)));
  List.iter
    (fun (fid, c) ->
      check_fid fid;
      Hashtbl.replace t.entries fid (ref c))
    (Rd.list r (fun r ->
         let fid = Rd.varint r in
         let c = Rd.varint r in
         (fid, c)));
  t
