exception Error of string

let error line col fmt =
  Format.kasprintf (fun s -> raise (Error (Printf.sprintf "line %d, col %d: %s" line col s))) fmt

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '#' ->
    skip_line st;
    skip_trivia st
  | Some '/' -> (
    match peek2 st with
    | Some '/' ->
      skip_line st;
      skip_trivia st
    | Some '*' ->
      let start_line = st.line and start_col = st.col in
      advance st;
      advance st;
      skip_block_comment st start_line start_col;
      skip_trivia st
    | Some _ | None -> ())
  | Some _ | None -> ()

and skip_line st =
  match peek st with
  | Some '\n' | None -> ()
  | Some _ ->
    advance st;
    skip_line st

and skip_block_comment st start_line start_col =
  match (peek st, peek2 st) with
  | Some '*', Some '/' ->
    advance st;
    advance st
  | Some _, _ ->
    advance st;
    skip_block_comment st start_line start_col
  | None, _ -> error start_line start_col "unterminated block comment"

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    Token.FLOAT (float_of_string (String.sub st.src start (st.pos - start)))
  end
  else Token.INT (int_of_string (String.sub st.src start (st.pos - start)))

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_string st =
  let line = st.line and col = st.col in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error line col "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        go ()
      | Some '\\' ->
        Buffer.add_char buf '\\';
        advance st;
        go ()
      | Some '"' ->
        Buffer.add_char buf '"';
        advance st;
        go ()
      | Some c -> error st.line st.col "invalid escape '\\%c'" c
      | None -> error line col "unterminated string literal")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit pos token = tokens := { Token.token; pos } :: !tokens in
  let rec loop () =
    skip_trivia st;
    let pos = { Token.line = st.line; col = st.col } in
    match peek st with
    | None -> emit pos Token.EOF
    | Some c ->
      (match c with
      | c when is_digit c -> emit pos (lex_number st)
      | c when is_ident_start c -> emit pos (Token.IDENT (lex_ident st))
      | '$' ->
        advance st;
        (match peek st with
        | Some c when is_ident_start c -> emit pos (Token.VAR (lex_ident st))
        | _ -> error pos.line pos.col "expected variable name after '$'")
      | '"' -> emit pos (lex_string st)
      | '(' -> advance st; emit pos Token.LPAREN
      | ')' -> advance st; emit pos Token.RPAREN
      | '{' -> advance st; emit pos Token.LBRACE
      | '}' -> advance st; emit pos Token.RBRACE
      | '[' -> advance st; emit pos Token.LBRACKET
      | ']' -> advance st; emit pos Token.RBRACKET
      | ',' -> advance st; emit pos Token.COMMA
      | ';' -> advance st; emit pos Token.SEMI
      | '+' -> advance st; emit pos Token.PLUS
      | '*' -> advance st; emit pos Token.STAR
      | '/' -> advance st; emit pos Token.SLASH
      | '%' -> advance st; emit pos Token.PERCENT
      | '.' -> advance st; emit pos Token.DOT
      | '^' -> advance st; emit pos Token.CARET
      | '-' ->
        advance st;
        if peek st = Some '>' then begin advance st; emit pos Token.ARROW end
        else emit pos Token.MINUS
      | '=' ->
        advance st;
        (match peek st with
        | Some '=' -> advance st; emit pos Token.EQ
        | Some '>' -> advance st; emit pos Token.FATARROW
        | _ -> emit pos Token.ASSIGN)
      | '<' ->
        advance st;
        (match peek st with
        | Some '=' -> advance st; emit pos Token.LE
        | Some '<' -> advance st; emit pos Token.SHL
        | _ -> emit pos Token.LT)
      | '>' ->
        advance st;
        (match peek st with
        | Some '=' -> advance st; emit pos Token.GE
        | Some '>' -> advance st; emit pos Token.SHR
        | _ -> emit pos Token.GT)
      | '!' ->
        advance st;
        if peek st = Some '=' then begin advance st; emit pos Token.NE end
        else emit pos Token.BANG
      | '&' ->
        advance st;
        if peek st = Some '&' then begin advance st; emit pos Token.ANDAND end
        else emit pos Token.AMP
      | '|' ->
        advance st;
        if peek st = Some '|' then begin advance st; emit pos Token.OROR end
        else emit pos Token.PIPE
      | c -> error pos.line pos.col "unexpected character '%c'" c);
      if (match !tokens with { Token.token = Token.EOF; _ } :: _ -> false | _ -> true) then loop ()
  in
  loop ();
  Array.of_list (List.rev !tokens)
