module R = Js_util.Rng

type config = {
  n_servers : int;
  n_buckets : int;
  seeders_per_bucket : int;
  server : Server.config;
  validation_catch_rate : float;
  verifier_catch_rate : float;
  max_boot_attempts : int;
  fallback_enabled : bool;
  max_seeder_retries : int;
  dist : Dist_net.config;
  home_region : int;
}

let default_config =
  {
    n_servers = 200;
    n_buckets = 10;
    seeders_per_bucket = 3;
    server = Server.default_config;
    validation_catch_rate = 0.95;
    verifier_catch_rate = 0.0;
    max_boot_attempts = 3;
    fallback_enabled = true;
    max_seeder_retries = 4;
    dist = Dist_net.default_config;
    home_region = 0;
  }

type stats = {
  packages_published : int;
  packages_rejected : int;
  verifier_rejects : int;
  bad_packages_published : int;
  crashes : (float * int) list;
  fallbacks : int;
  jump_started : int;
  bucket_jump_started : int array;
  bucket_fallbacks : int array;
  fleet_rps : Js_util.Stats.Series.t;
  fleet_peak_rps : float;
  dist : Dist_net.counters option;
}

type seeding = {
  per_bucket : Server.package list array;
  published : int;
  rejected : int;
  seed_verifier_rejects : int;
  bad_published : int;
}

(* One fleet member during C3. *)
type member = {
  bucket : int;
  mutable server : Server.t;
  mutable started_at : float;
  mutable attempts : int;
  mutable fell_back : bool;
  mutable crash_count : int;
  seed_base : int;
}

(* C2: run seeders, with fault injection and the §VI gates. *)
let run_seeders config app rng ~bad_package_rate ~thin_profile_rate =
  let published = Array.make config.n_buckets [] in
  let n_published = ref 0 and n_rejected = ref 0 and n_bad_published = ref 0 in
  let n_verifier_rejects = ref 0 in
  for bucket = 0 to config.n_buckets - 1 do
    let bucket_packages = ref [] in
    for s = 0 to config.seeders_per_bucket - 1 do
      (* each seeder retries until it publishes or gives up *)
      let rec attempt k =
        if k > config.max_seeder_retries then ()
        else begin
          let bad = R.bool rng bad_package_rate in
          let thin = R.bool rng thin_profile_rate in
          let quality = if thin then 0.4 else 1.0 in
          let pkg =
            Server.make_package config.server app ~quality ~bad
              ~coverage_target:config.server.Server.profile_request_target ()
          in
          (* §VI-B coverage gate: thin profiles are detectably small *)
          let rejected_by_coverage = quality < 0.6 in
          (* §VI-A.1 self-validation: bad packages are usually caught *)
          let rejected_by_validation = bad && R.bool rng config.validation_catch_rate in
          (* §VI-A static verifier: an independent consistency pass over the
             round-tripped package.  The rate check comes first so the
             default (0.0, verifier off) consumes no randomness and leaves
             every existing seeded simulation byte-identical. *)
          let rejected_by_verifier =
            config.verifier_catch_rate > 0. && bad && R.bool rng config.verifier_catch_rate
          in
          if rejected_by_coverage || rejected_by_validation || rejected_by_verifier then begin
            incr n_rejected;
            if rejected_by_verifier && not (rejected_by_coverage || rejected_by_validation) then
              incr n_verifier_rejects;
            attempt (k + 1)
          end
          else begin
            incr n_published;
            if bad then incr n_bad_published;
            bucket_packages := pkg :: !bucket_packages
          end
        end
      in
      ignore s;
      attempt 0
    done;
    (* store oldest-published first so the network's prepend order (and any
       direct pick) reproduces the historical per-bucket list exactly *)
    published.(bucket) <- List.rev !bucket_packages
  done;
  {
    per_bucket = published;
    published = !n_published;
    rejected = !n_rejected;
    seed_verifier_rejects = !n_verifier_rejects;
    bad_published = !n_bad_published;
  }

let forced_seeding config app ~bad_per_bucket =
  let n = config.seeders_per_bucket in
  let bad_n = min bad_per_bucket n in
  let published =
    (* reversed so the publish order (and the resulting replica lists) stay
       byte-identical to the historical hashtable-of-refs representation *)
    Array.init config.n_buckets (fun _ ->
        List.rev
          (List.init n (fun i ->
               Server.make_package config.server app ~bad:(i < bad_n)
                 ~coverage_target:config.server.Server.profile_request_target ())))
  in
  {
    per_bucket = published;
    published = config.n_buckets * n;
    rejected = 0;
    seed_verifier_rejects = 0;
    bad_published = config.n_buckets * bad_n;
  }

let simulate_push ?telemetry config ?force_bad_per_bucket app ~seed ~bad_package_rate
    ~thin_profile_rate ~duration =
  let tel f =
    match telemetry with
    | Some t -> f t
    | None -> ()
  in
  let rng = R.create seed in
  let seeding =
    match force_bad_per_bucket with
    | Some bad_per_bucket -> forced_seeding config app ~bad_per_bucket
    | None -> run_seeders config app rng ~bad_package_rate ~thin_profile_rate
  in
  tel (fun t ->
      Js_telemetry.incr t ~by:seeding.published "fleet.packages_published";
      Js_telemetry.incr t ~by:seeding.rejected "fleet.packages_rejected";
      if seeding.seed_verifier_rejects > 0 then
        Js_telemetry.incr t ~by:seeding.seed_verifier_rejects "fleet.verifier_rejects");
  (* The distribution network sits between C2's published packages and C3's
     consumers.  Replicas are published oldest-first so the prepend order
     inside the network reproduces the historical per-bucket list exactly
     (neutral configs must pick draw-identically). *)
  let net = Dist_net.create config.dist in
  for bucket = 0 to config.n_buckets - 1 do
    List.iter
      (fun pkg -> Dist_net.publish net rng ~now:0. ~bucket pkg)
      seeding.per_bucket.(bucket)
  done;
  let fallbacks = ref 0 and jump_started = ref 0 in
  let bucket_jump_started = Array.make config.n_buckets 0 in
  let bucket_fallbacks = Array.make config.n_buckets 0 in
  let boot_member ~ix ~bucket ~seed_base ~attempts ~at =
    let source = Printf.sprintf "server.%d" ix in
    let no_packages = seeding.per_bucket.(bucket) = [] in
    let role, fetch_delay, fetch_failed =
      if (not config.fallback_enabled) || attempts < config.max_boot_attempts then begin
        match
          Dist_net.fetch ?telemetry net rng ~now:at ~region:config.home_region ~bucket
        with
        | Dist_net.Delivered (pkg, d) -> (Server.Consumer pkg, d, false)
        | Dist_net.Unavailable d -> (Server.No_jumpstart, d, true)
        | Dist_net.Not_found -> (Server.No_jumpstart, 0., false)
      end
      else (Server.No_jumpstart, 0., false)
    in
    (match role with
    | Server.No_jumpstart ->
      if attempts > 0 || no_packages || fetch_failed then begin
        incr fallbacks;
        bucket_fallbacks.(bucket) <- bucket_fallbacks.(bucket) + 1;
        tel (fun t ->
            let outcome, reason =
              if no_packages then ("no_package", "no profile package available")
              else if fetch_failed then
                ("fetch_failed", "package fetch failed: distribution network unavailable")
              else
                ( "fallback",
                  Printf.sprintf "exhausted %d boot attempts (bad package)" attempts )
            in
            Js_telemetry.incr t "fleet.boot_attempts";
            Js_telemetry.incr t "fleet.fallbacks";
            Js_telemetry.record t
              (Js_telemetry.Boot_attempt { source; attempt = attempts + 1; outcome });
            Js_telemetry.record t (Js_telemetry.Fallback { source; reason }))
      end
    | Server.Consumer _ ->
      if attempts = 0 then begin
        incr jump_started;
        bucket_jump_started.(bucket) <- bucket_jump_started.(bucket) + 1
      end;
      tel (fun t ->
          Js_telemetry.incr t "fleet.boot_attempts";
          Js_telemetry.record t
            (Js_telemetry.Boot_attempt
               { source; attempt = attempts + 1; outcome = "jump_started" }))
    | Server.Seeder -> ());
    let server =
      Server.create
        ~discovery_seed:(seed_base + (attempts * 7919))
        ~extra_boot_seconds:fetch_delay config.server app role
    in
    tel (fun t ->
        let boot = Server.boot_seconds server in
        Js_telemetry.add_span t (source ^ ".boot") ~start:at ~dur:boot;
        Js_telemetry.observe t ~lo:0. ~hi:240. ~buckets:24 "fleet.boot_seconds" boot);
    (server, at)
  in
  (* C3: the whole fleet restarts at t = 0 *)
  let members =
    Array.init config.n_servers (fun i ->
        let bucket = i * config.n_buckets / config.n_servers in
        let seed_base = seed + (i * 104729) in
        let server, started_at = boot_member ~ix:i ~bucket ~seed_base ~attempts:0 ~at:0. in
        { bucket; server; started_at; attempts = 0; fell_back = false; crash_count = 0; seed_base })
  in
  let crashes : (float, int ref) Hashtbl.t = Hashtbl.create 16 in
  let fleet_rps = Js_util.Stats.Series.create () in
  let dt = 1.0 in
  let time = ref 0. in
  while !time < duration do
    time := !time +. dt;
    tel (fun t -> Js_telemetry.Clock.set (Js_telemetry.clock t) !time);
    let total = ref 0. in
    Array.iteri
      (fun ix m ->
        Server.step m.server ~dt;
        (match Server.crashed m.server with
        | Some Server.Bad_package ->
          m.crash_count <- m.crash_count + 1;
          m.attempts <- m.attempts + 1;
          tel (fun t ->
              Js_telemetry.incr t "fleet.crashes";
              Js_telemetry.record t
                (Js_telemetry.Server_crashed { server = ix; kind = "bad_package" }));
          let round = Float.round (!time /. 30.) *. 30. in
          (match Hashtbl.find_opt crashes round with
          | Some r -> incr r
          | None -> Hashtbl.add crashes round (ref 1));
          let server, _ =
            boot_member ~ix ~bucket:m.bucket ~seed_base:m.seed_base ~attempts:m.attempts
              ~at:!time
          in
          m.server <- server;
          m.started_at <- !time;
          m.fell_back <- m.attempts >= config.max_boot_attempts && config.fallback_enabled
        | None -> ());
        total := !total +. Server.current_rps m.server)
      members;
    Js_util.Stats.Series.add fleet_rps ~time:!time ~value:!total
  done;
  let fleet_peak_rps = Array.fold_left (fun acc m -> acc +. Server.peak_rps m.server) 0. members in
  let blast_radius =
    Hashtbl.fold (fun _ r acc -> max acc !r) crashes 0
  in
  tel (fun t ->
      let n = float_of_int config.n_servers in
      Js_telemetry.set_gauge t "fleet.fallback_rate" (float_of_int !fallbacks /. n);
      Js_telemetry.set_gauge t "fleet.jump_start_rate" (float_of_int !jump_started /. n);
      Js_telemetry.set_gauge t "fleet.crash_blast_radius" (float_of_int blast_radius));
  {
    packages_published = seeding.published;
    packages_rejected = seeding.rejected;
    verifier_rejects = seeding.seed_verifier_rejects;
    bad_packages_published = seeding.bad_published;
    crashes =
      Hashtbl.fold (fun t r acc -> (t, !r) :: acc) crashes [] |> List.sort compare;
    fallbacks = !fallbacks;
    jump_started = !jump_started;
    bucket_jump_started;
    bucket_fallbacks;
    fleet_rps;
    fleet_peak_rps;
    dist = (if Dist_net.active config.dist then Some (Dist_net.counters net) else None);
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>published=%d rejected=%d (verifier=%d) bad_published=%d jump_started=%d fallbacks=%d@,crash rounds:"
    s.packages_published s.packages_rejected s.verifier_rejects s.bad_packages_published
    s.jump_started s.fallbacks;
  (match s.dist with
  | Some c -> Format.fprintf fmt "@,%a" Dist_net.pp_counters c
  | None -> ());
  List.iter (fun (t, n) -> Format.fprintf fmt "@,  t=%5.0fs crashed=%d" t n) s.crashes;
  Format.fprintf fmt "@]"
