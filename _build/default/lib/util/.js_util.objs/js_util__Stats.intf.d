lib/util/stats.mli:
