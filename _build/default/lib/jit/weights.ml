module C = Jit_profile.Counters
module IT = Vasm.Inline_tree
module VF = Vasm.Vfunc

type t = { block_weights : float array; arc_weight : int * int -> float }

(* Deterministic per-block drift factor in [0.55, 1.45]: models the weight
   degradation through the optimization pipeline between the point where
   profile data is injected (bytecode) and where layout consumes it (final
   Vasm) — see the .mli. *)
let drift ~fid ~block =
  let h = ref (fid * 0x9E3779B1) in
  h := !h lxor (block * 0x85EBCA6B);
  h := !h lxor (!h lsr 13);
  h := !h * 0xC2B2AE35;
  h := !h lxor (!h lsr 16);
  let u = float_of_int (!h land 0xFFFF) /. 65535. in
  0.55 +. (0.9 *. u)

let estimate repo counters (vf : VF.t) =
  let tree = vf.VF.tree in
  let n_nodes = IT.n_nodes tree in
  (* scale factor per inline node: how much of the callee's aggregate
     profile is attributed to this call site *)
  let scale = Array.make n_nodes 1. in
  Array.iter
    (fun (node : IT.node) ->
      match node.IT.parent with
      | None -> ()
      | Some (parent_id, site) ->
        let parent = IT.node tree parent_id in
        let site_calls =
          match
            List.assoc_opt node.IT.fid
              (C.call_targets counters parent.IT.fid site)
          with
          | Some c -> float_of_int c
          | None -> 0.
        in
        let callee_entries = float_of_int (C.func_entries counters node.IT.fid) in
        let ratio = if callee_entries > 0. then Float.min 1. (site_calls /. callee_entries) else 0. in
        scale.(node.IT.node_id) <- scale.(parent_id) *. ratio)
    (IT.nodes tree);
  let block_weights = Array.make (VF.n_blocks vf) 0. in
  let arcs : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let add_arc src dst w =
    let cur = match Hashtbl.find_opt arcs (src, dst) with Some x -> x | None -> 0. in
    Hashtbl.replace arcs (src, dst) (cur +. w)
  in
  Array.iter
    (fun (node : IT.node) ->
      let nid = node.IT.node_id in
      let s = scale.(nid) in
      let counts = C.block_counts counters node.IT.fid in
      (* main block weights from bytecode bb counters *)
      (match counts with
      | None -> ()
      | Some bb_counts ->
        Array.iteri
          (fun bb c ->
            match VF.main_block vf ~node:nid ~bb with
            | Some blk -> block_weights.(blk) <- float_of_int c *. s
            | None -> ())
          bb_counts);
      (* cfg arcs from bytecode arc counters *)
      List.iter
        (fun (src_bb, dst_bb, c) ->
          match (VF.main_block vf ~node:nid ~bb:src_bb, VF.main_block vf ~node:nid ~bb:dst_bb) with
          | Some src, Some dst -> add_arc src dst (float_of_int c *. s)
          | _, _ -> ())
        (C.arc_counts counters node.IT.fid);
      (* call-entry and return arcs for inlined children *)
      List.iter
        (fun (site, child_id) ->
          let child = IT.node tree child_id in
          let site_calls =
            match List.assoc_opt child.IT.fid (C.call_targets counters node.IT.fid site) with
            | Some c -> float_of_int c *. s
            | None -> 0.
          in
          let f = Hhbc.Repo.func repo node.IT.fid in
          let bbs = Hhbc.Func.basic_blocks f in
          let site_bb = Hhbc.Func.block_of_instr bbs site in
          match (VF.main_block vf ~node:nid ~bb:site_bb, VF.main_block vf ~node:child_id ~bb:0) with
          | Some caller_blk, Some entry_blk ->
            add_arc caller_blk entry_blk site_calls;
            (* return arcs: every callee block ending in Ret flows back *)
            let child_f = Hhbc.Repo.func repo child.IT.fid in
            let child_bbs = Hhbc.Func.basic_blocks child_f in
            Array.iter
              (fun (cbb : Hhbc.Func.block) ->
                let last = child_f.Hhbc.Func.body.(cbb.start + cbb.len - 1) in
                if last = Hhbc.Instr.Ret then
                  match VF.main_block vf ~node:child_id ~bb:cbb.Hhbc.Func.bb_id with
                  | Some ret_blk ->
                    add_arc ret_blk caller_blk block_weights.(ret_blk)
                  | None -> ())
              child_bbs
          | _, _ -> ())
        node.IT.children)
    (IT.nodes tree);
  (* slow paths: invisible to tier-1 -> estimated at zero (the point!) *)
  (* apply the pipeline drift; arcs scale with the geometric mean of their
     endpoints' factors so flow stays roughly conserved *)
  let fid = vf.VF.root_fid in
  Array.iteri (fun b w -> block_weights.(b) <- w *. drift ~fid ~block:b) block_weights;
  let arc_weight (src, dst) =
    match Hashtbl.find_opt arcs (src, dst) with
    | None -> 0.
    | Some w -> w *. sqrt (drift ~fid ~block:src *. drift ~fid ~block:dst)
  in
  { block_weights; arc_weight }

let to_cfg (vf : VF.t) t =
  let blocks =
    Array.map
      (fun (b : VF.block) -> { Layout.Cfg.id = b.VF.id; size = b.VF.size; weight = t.block_weights.(b.VF.id) })
      vf.VF.blocks
  in
  let arcs =
    Array.map
      (fun (src, dst) -> { Layout.Cfg.src; dst; weight = t.arc_weight (src, dst) })
      (VF.arcs vf)
  in
  Layout.Cfg.create ~blocks ~arcs ~entry:vf.VF.entry
