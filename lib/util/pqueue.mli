(** Mutable binary min-heap keyed by float priority.

    Used as the event queue of the discrete-event cluster simulator.  Ties are
    broken by insertion order, which makes simulations deterministic.

    Popped slots are cleared so the queue never retains references to values
    it no longer holds, and the backing array shrinks once occupancy drops
    below a quarter of capacity — a long-lived queue that briefly spikes does
    not pin its high-water mark (or the closures/payloads stored at it). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Current backing-array capacity (for tests/introspection). *)
val capacity : 'a t -> int

(** [push t ~priority v] inserts [v]. *)
val push : 'a t -> priority:float -> 'a -> unit

(** [pop t] removes and returns the minimum-priority element with its
    priority, or [None] when empty.  The vacated slot is cleared. *)
val pop : 'a t -> (float * 'a) option

(** [peek t] returns the minimum without removing it. *)
val peek : 'a t -> (float * 'a) option

(** Flat struct-of-arrays min-heap for allocation-free event queues.

    Priorities are kept in an unboxed [float array] and payloads in a
    preallocated ['a array] padded with a caller-supplied [dummy], so
    [push]/[pop_exn] allocate nothing once the arrays have grown to the
    workload's high-water mark (the slot pool is deliberately not shrunk —
    it {e is} the event pool).  Same deterministic FIFO tie-breaking as the
    boxed heap above.  Popped payload slots are reset to [dummy]. *)
module Flat : sig
  type 'a t

  (** [create ~dummy ()] — [dummy] fills empty payload slots and must be a
      value the caller treats as inert (e.g. an [Ev_none] variant). *)
  val create : dummy:'a -> unit -> 'a t

  val length : 'a t -> int
  val is_empty : 'a t -> bool

  (** Current slot-pool capacity (for tests/introspection). *)
  val capacity : 'a t -> int

  (** Priority of the minimum entry, or [infinity] when empty — lets the
      event loop test "next event before horizon?" without an option
      allocation. *)
  val min_priority : 'a t -> float

  (** @raise Invalid_argument on NaN priority. *)
  val push : 'a t -> priority:float -> 'a -> unit

  (** Removes and returns the minimum-priority payload (FIFO on ties).
      @raise Invalid_argument when empty — guard with [min_priority]. *)
  val pop_exn : 'a t -> 'a
end
