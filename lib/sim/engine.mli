(** Discrete-event simulation core.

    A monotone simulated clock plus an event queue ({!Js_util.Pqueue}: binary
    min-heap keyed by event time, ties broken by insertion order), so a run
    is a deterministic function of the scheduled closures and the seeds they
    consume.  When a telemetry sink is attached, its simulated clock is kept
    in sync with the engine clock at every dispatch, so spans and events
    recorded from inside handlers carry simulation timestamps. *)

type t

val create : ?telemetry:Js_telemetry.t -> unit -> t

(** Current simulation time in seconds. *)
val now : t -> float

(** Events dispatched so far. *)
val dispatched : t -> int

(** Events still queued. *)
val pending : t -> int

(** [schedule t ~at f] queues [f] to run at absolute time [at] (clamped to
    [now t]: the clock never goes backwards).  @raise Invalid_argument on
    NaN. *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [after t ~delay f] = [schedule t ~at:(now t +. max 0. delay) f]. *)
val after : t -> delay:float -> (unit -> unit) -> unit

(** [run t ~until] dispatches events in (time, insertion) order until the
    queue holds nothing at or before [until], then advances the clock to
    [until].  Handlers may schedule further events, including at the current
    time. *)
val run : t -> until:float -> unit
