lib/machine/hierarchy.ml: Branch Cache Format
