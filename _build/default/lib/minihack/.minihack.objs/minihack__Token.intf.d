lib/minihack/token.mli:
