(** Multi-region discrete-event fleet simulation.

    Generalizes the single-region push simulator ({!Push} is now a thin
    wrapper over this module) to a global fleet: [n_regions] regional fleets,
    each with its own servers, balancer, RNG streams and phase-offset diurnal
    {!Arrival} curve, sharing one {!Cluster.Dist_net} (region [r] fetches
    from replica region [r]; region 0 is the seeder region that runs C2
    seeding and publishes).  Pushes roll region by region, [push_stagger]
    seconds apart — the global push train.

    {b Execution modes.}  [`Merged] runs every region on one shared engine —
    a plain single event queue, trivially correct.  [`Epoch] gives each
    region its own {!Engine} and advances them in lockstep to barriers
    [k * epoch] (regions in index order within an epoch).
    [`Parallel domains] keeps the same barriers but advances the regions
    between them on [domains] concurrent OCaml domains (round-robin region
    assignment, clamped to [\[1, n_regions\]]).  All three produce
    byte-identical {!global_digest}s for the same seed because:
    {ul
    {- every event belongs to exactly one region, and a region's events are
       dispatched in the same (time, insertion) order in every mode — the
       merged queue's per-region projection {e is} the regional queue;}
    {- cross-region interactions go through state that is either commutative
       (shared {!Cluster.Dist_net} counters, sharded per fetcher region),
       time-gated (replica visibility, disaster windows — pure functions of
       the simulated clock), or carried by spill events whose latency is
       validated [>= epoch], so they land strictly after the next barrier
       (in parallel mode they travel via per-(src, dst) mailboxes drained at
       the barrier in index order — fork/join edges are the only
       synchronization);}
    {- seeding happens in region 0's push event, which every mode orders
       before every logically-later fetch ([`Parallel] runs the push's whole
       epoch sequentially and pre-warms the shared warmup-curve cache at
       that barrier, after which shared state is read-only).}}

    In parallel mode each region also gets a private telemetry shard (own
    clock — no cross-domain clock writes) merged into the caller's registry
    after the run: counters and histograms fold commutatively, so they match
    a sequential shared-registry run counter-for-counter.

    {b Arrival batching.}  When [batch] is on (the default), a same-tick
    burst of pre-drawn arrivals is coalesced: an arrival whose successor is
    inside the current run horizon and strictly earlier than every queued
    event dispatches it inline instead of round-tripping the heap
    ({!Engine.step_to} keeps clock/dispatch accounting identical), which
    preserves the (time, insertion) order — and therefore digests — exactly.

    {b Spillover.}  When a region has no accepting servers — or its accepting
    fraction drops below [spill_threshold] — the marginal share of its
    arrivals is forwarded to an up foreign region (round-robin, rng-free),
    arriving [spill_latency] seconds later and counted in
    [spilled_out]/[spilled_in].

    {b Disasters.}  {!Region_loss} takes a whole region down mid-run (all
    servers drained, pending restarts cancelled, zero crashes — generation
    bumps invalidate in-flight events — and its load spills cross-region);
    {!Dist_partition} cuts a region's consumers off from the distribution
    network for a window; {!Seeder_outage} takes the seeder region's replica
    store down, forcing its consumers onto cross-region Jump-Start fetches.
    All are schedules fixed before the run — reachability is a pure function
    of time, part of the determinism argument above. *)

(** Identical to the historical [Push.config]; [fleet.n_servers] is {e per
    region}. *)
type config = {
  fleet : Cluster.Fleet.config;
  warm_rps : float;
  concurrency : int;
  queue_capacity : int;
  request_timeout : float;
  arrival : Arrival.config;
  policy : Balancer.policy;
  jumpstart : bool;
  push_at : float;
  drain_cap : int;
  abort_window : float;
  abort_threshold : int;
  bad_package_rate : float;
  thin_profile_rate : float;
  duration : float;
  curve_horizon : float;
  tick : float;
  record_latency : bool;
      (** record per-server (time, latency) samples into
          [stats.server_latency].  Off by default; turning it on draws no RNG
          and changes no digest — it only spends memory. *)
}

val default_config : config

type disaster =
  | Region_loss of { region : int; at : float }
      (** the whole region goes dark at [at] *)
  | Dist_partition of { region : int; at : float; duration : float }
      (** the region's fetchers are cut off during [\[at, at+duration)] *)
  | Seeder_outage of { at : float }
      (** region 0's replica store is unreachable from [at] on *)

type global_config = {
  base : config;  (** per-region configuration *)
  n_regions : int;
  region_phase : float;  (** seconds of diurnal phase offset per region *)
  push_stagger : float;  (** seconds between consecutive regions' pushes *)
  spillover : bool;  (** enable cross-region spillover routing *)
  spill_latency : float;  (** cross-region forwarding latency; >= [epoch] *)
  spill_threshold : float;
      (** accepting fraction below which marginal arrivals spill, in (0,1] *)
  epoch : float;  (** barrier interval for [`Epoch]/[`Parallel] modes, s *)
  disasters : disaster list;
  batch : bool;  (** coalesce same-burst arrivals (digest-neutral); on by default *)
}

(** 1 region, no spillover, 30 s epochs, 60 s spill latency, no disasters,
    batching on. *)
val default_global_config : global_config

(** Per-region results — the historical [Push.stats] plus [region],
    [spilled_out]/[spilled_in] and [lost].  Seeding fields
    ([packages_*], [dist]) are populated on region 0 (the seeder region)
    and zero/[None] elsewhere. *)
type stats = {
  region : int;
  policy : Balancer.policy;
  jumpstart : bool;
  arrived : int;
  completed : int;
  shed_queue_full : int;
  shed_timeout : int;
  shed_no_server : int;
  shed_drain : int;
  crashes : int;
  jump_started : int;
  fallbacks : int;
  spilled_out : int;  (** arrivals this region forwarded cross-region *)
  spilled_in : int;  (** spilled arrivals received from other regions *)
  bucket_jump_started : int array;
  bucket_fallbacks : int array;
  packages_published : int;
  packages_rejected : int;
  bad_packages_published : int;
  aborted : bool;
  lost : bool;  (** a {!Region_loss} fired for this region *)
  push_started : float;
  push_done : float;
  time_to_full_capacity : float;
  capacity_loss_integral : float;
  fleet_warm_rps : float;
  latency : Js_util.Stats.Quantile.t;
  latency_push : Js_util.Stats.Quantile.t;
  capacity_series : Js_util.Stats.Series.t;
  served_series : Js_util.Stats.Series.t;
  server_latency : Js_util.Stats.Series.t array;
      (** per-server (completion time, latency) sample streams, indexed by
          server; length [fleet.n_servers] when [config.record_latency] was
          set and [| |] otherwise.  Excluded from {!digest}. *)
  events_dispatched : int;
  dist : Cluster.Dist_net.counters option;
}

type global_stats = {
  g_mode : string;
      (** "epoch", "merged" or "parallel"; excluded from {!global_digest} *)
  g_regions : stats array;
  g_latency : Js_util.Stats.Quantile.t;  (** all regions merged *)
  g_latency_push : Js_util.Stats.Quantile.t;
  g_epochs : int;  (** barriers executed (1 in merged mode) *)
  g_events : int;  (** events dispatched across all regions *)
  g_spilled : int;  (** total cross-region spills *)
  g_net : Cluster.Dist_net.counters;  (** the shared network's counters *)
}

(** [run_global ?telemetry ?mode gcfg app ~seed] — deterministic: same
    inputs produce identical {!global_digest}s across [`Epoch] (the
    default), [`Merged] and [`Parallel domains] (see above; the domain count
    is clamped to [\[1, n_regions\]], so [`Parallel 1] is an exact
    sequential replay of the barrier schedule).  With [n_regions > 1] the
    dist-net config is widened to cover every region with [cross_region]
    forced on.  @raise Invalid_argument on invalid configs, including
    [spillover] with [spill_latency < epoch]. *)
val run_global :
  ?telemetry:Js_telemetry.t ->
  ?mode:[ `Epoch | `Merged | `Parallel of int ] ->
  global_config ->
  Workload.Macro_app.t ->
  seed:int ->
  global_stats

(** Single-region convenience: [run cfg app ~seed] is
    [run_global { default_global_config with base = cfg }] on the shared
    engine, returning region 0's stats — the historical [Push.run]. *)
val run : ?telemetry:Js_telemetry.t -> config -> Workload.Macro_app.t -> seed:int -> stats

(** Full-precision canonical rendering of every per-region stats field. *)
val digest : stats -> string

(** Canonical rendering of a whole global run: every region's {!digest} plus
    merged quantiles, totals and the shared network counters.  Excludes
    [g_mode]/[g_epochs] so epoch and merged runs of the same seed are
    byte-identical. *)
val global_digest : global_stats -> string

val pp_stats : Format.formatter -> stats -> unit
val pp_global_stats : Format.formatter -> global_stats -> unit
