(** Recursive-descent parser for minihack.

    Grammar (informal):
    {v
    program   ::= (func | class)*
    func      ::= "function" IDENT "(" params? ")" block
    class     ::= "class" IDENT ("extends" IDENT)? "{" member* "}"
    member    ::= "prop" VAR ("=" expr)? ";" | "method" IDENT "(" params? ")" block
    stmt      ::= expr ";" | lvalue "=" expr ";" | expr "[" "]" "=" expr ";"
                | "if" ...("else if")* ("else")? | "while" | "for" | "foreach"
                | "return" expr? ";" | "echo" expr ";" | "break" ";" | "continue" ";"
    expr      ::= precedence-climbing over || && | ^ & == != < <= > >= << >>
                  + - . * / % with unary ! - and postfix call/index/prop/method
    v} *)

(** Raised on syntax errors with a message including the source position. *)
exception Error of string

val parse_program : string -> Ast.program

(** Parse a single expression (used by tests and the REPL-ish examples). *)
val parse_expr : string -> Ast.expr
