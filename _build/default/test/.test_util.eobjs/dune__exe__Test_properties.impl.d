test/test_properties.ml: Alcotest Array Interp Jit_profile Js_util Layout Lazy List Machine Mh_runtime Minihack Printf QCheck QCheck_alcotest Workload
