lib/core/consumer.ml: Hhbc Interp Jit Jit_profile Mh_runtime Options Package Printf Store Vasm
