lib/hhbc/repo.ml: Array Class_def Format Func Hashtbl Instr List Option Printf String Unit_def Value
