module R = Js_util.Rng
module Stats = Js_util.Stats

let derive_seeds ~seed ~n =
  if n < 1 then invalid_arg "Harness.derive_seeds: n must be >= 1";
  let root = R.create seed in
  Array.init n (fun _ ->
      let child = R.split root in
      Int64.to_int (R.bits64 child) land max_int)

let bin_series ~bin samples =
  if bin <= 0. then invalid_arg "Harness.bin_series: bin must be positive";
  let n = Array.length samples in
  if n = 0 then [||]
  else begin
    let out = ref [] in
    let cur_bin = ref (int_of_float (Float.floor (fst samples.(0) /. bin))) in
    let sum = ref 0. and count = ref 0 in
    let flush () =
      if !count > 0 then
        out :=
          ( (float_of_int !cur_bin +. 0.5) *. bin,
            !sum /. float_of_int !count )
          :: !out
    in
    Array.iter
      (fun (t, v) ->
        let b = int_of_float (Float.floor (t /. bin)) in
        if b <> !cur_bin then begin
          flush ();
          cur_bin := b;
          sum := 0.;
          count := 0
        end;
        sum := !sum +. v;
        incr count)
      samples;
    flush ();
    Array.of_list (List.rev !out)
  end

let of_push cfg app ~seed =
  let s = Js_sim.Push.run { cfg with Js_sim.Push.record_latency = true } app ~seed in
  Array.map Stats.Series.to_array s.Js_sim.Push.server_latency

type run_result = {
  config : string;
  seed : int;
  server : int;
  result : Classify.result;
}

let run ?(domains = 1) ?(bin = 5.) ?classify ~configs ~seeds () =
  if Array.length seeds = 0 then invalid_arg "Harness.run: no seeds";
  if configs = [] then invalid_arg "Harness.run: no configs";
  let configs = Array.of_list configs in
  let nc = Array.length configs and ns = Array.length seeds in
  let cells = Array.make (nc * ns) [] in
  let work i =
    let ci = i / ns and si = i mod ns in
    let name, runner = configs.(ci) in
    let seed = seeds.(si) in
    let servers = runner ~seed in
    let acc = ref [] in
    for sv = Array.length servers - 1 downto 0 do
      let binned = bin_series ~bin servers.(sv) in
      (* a server that never completed a request has nothing to classify *)
      if Array.length binned > 0 then
        acc :=
          { config = name; seed; server = sv; result = Classify.classify ?config:classify binned }
          :: !acc
    done;
    cells.(i) <- !acc
  in
  let total = nc * ns in
  if domains <= 1 then
    for i = 0 to total - 1 do
      work i
    done
  else
    (* Each cell is independent and deterministic, and cell i is written by
       exactly one domain (round-robin), so the result — hence every digest
       and artifact downstream — is identical for any domain count. *)
    Js_util.Par.fork_join ~domains:(min domains total) (fun d ->
        let i = ref d in
        while !i < total do
          work !i;
          i := !i + domains
        done);
  List.concat (Array.to_list cells)

type summary = {
  s_config : string;
  runs : int;
  counts : (Classify.cls * int) list;
  tts : float array;
  tts_mean : float;
  tts_ci : float * float;
  steady : float array;
  steady_mean : float;
  steady_ci : float * float;
}

let summarize ?(ci_seed = 0x5eed) ?(replicates = 300) results =
  let order = ref [] in
  let by_config = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if not (Hashtbl.mem by_config r.config) then begin
        order := r.config :: !order;
        Hashtbl.add by_config r.config []
      end;
      Hashtbl.replace by_config r.config (r :: Hashtbl.find by_config r.config))
    results;
  List.rev_map
    (fun name ->
      let rs = List.rev (Hashtbl.find by_config name) in
      let counts =
        List.map
          (fun c ->
            (c, List.length (List.filter (fun r -> r.result.Classify.cls = c) rs)))
          Classify.all_classes
      in
      let tts =
        rs
        |> List.filter (fun r -> r.result.Classify.cls <> Classify.No_steady_state)
        |> List.map (fun r -> r.result.Classify.tts)
        |> Array.of_list
      in
      let steady = Array.of_list (List.map (fun r -> r.result.Classify.steady_mean) rs) in
      let dist xs =
        if Array.length xs = 0 then (-1., (-1., -1.))
        else (Stats.mean xs, Stats.ci_bootstrap ~replicates ~seed:ci_seed xs Stats.mean)
      in
      let tts_mean, tts_ci = dist tts in
      let steady_mean, steady_ci = dist steady in
      { s_config = name; runs = List.length rs; counts; tts; tts_mean; tts_ci;
        steady; steady_mean; steady_ci })
    !order
