lib/layout/c3.ml: Array List
