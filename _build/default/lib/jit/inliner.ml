type params = {
  max_depth : int;
  max_callee_bytecode : int;
  max_total_bytecode : int;
  min_site_calls : int;
  min_dominant_fraction : float;
}

let default_params =
  {
    max_depth = 4;
    max_callee_bytecode = 700;
    max_total_bytecode = 5000;
    min_site_calls = 10;
    min_dominant_fraction = 0.85;
  }

let plan repo counters root params =
  let builder = Vasm.Inline_tree.Build.start root in
  let budget = ref params.max_total_bytecode in
  (* [path] carries the fids currently being inlined, to cut recursion *)
  let rec expand ~node ~fid ~depth ~path =
    if depth < params.max_depth then begin
      let f = Hhbc.Repo.func repo fid in
      Array.iteri
        (fun site instr ->
          let candidate =
            match instr with
            | Hhbc.Instr.Call (callee, _) -> (
              (* direct call: inline when hot enough, no guard needed *)
              match Jit_profile.Counters.call_targets counters fid site with
              | (c, count) :: _ when c = callee && count >= params.min_site_calls -> Some callee
              | _ -> None)
            | Hhbc.Instr.CallMethod (_, _) -> (
              (* speculative: require a dominant receiver target *)
              match Jit_profile.Counters.dominant_target counters fid site with
              | Some (callee, fraction) when fraction >= params.min_dominant_fraction -> (
                match Jit_profile.Counters.call_targets counters fid site with
                | (_, count) :: _ when count >= params.min_site_calls -> Some callee
                | _ -> None)
              | Some _ | None -> None)
            | _ -> None
          in
          match candidate with
          | None -> ()
          | Some callee ->
            if not (List.mem callee path) then begin
              let size = Hhbc.Func.bytecode_size (Hhbc.Repo.func repo callee) in
              if size <= params.max_callee_bytecode && size <= !budget then begin
                budget := !budget - size;
                let child =
                  Vasm.Inline_tree.Build.add_child builder ~parent:node ~site ~fid:callee
                in
                expand ~node:child ~fid:callee ~depth:(depth + 1) ~path:(callee :: path)
              end
            end)
        f.Hhbc.Func.body
    end
  in
  expand ~node:0 ~fid:root ~depth:0 ~path:[ root ];
  Vasm.Inline_tree.Build.finish builder
