lib/minihack/lexer.ml: Array Buffer Format List Printf String Token
