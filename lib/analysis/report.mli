(** Rendering for the [analyze] CLI subcommands: per-function dataflow facts
    plus diagnostics, as stable text or JSON.  Deterministic for a given
    repo, so golden tests can pin the output. *)

type func_row = {
  fid : int;
  name : string;
  n_blocks : int;
  n_reachable : int;  (** blocks reachable over feasible edges *)
  n_cfg_edges : int;
  n_feasible_edges : int;
  n_dead_stores : int;
  n_const_facts : int;  (** pcs whose pushed value is a proven constant *)
  iterations : int;
  converged : bool;
}

val row : Hhbc.Repo.t -> Hhbc.Func.t -> func_row
val rows : Hhbc.Repo.t -> func_row list

(** [text repo ~diags] — one fact line per function, then the diagnostics,
    then an ["analyzed N functions: E errors, W warnings"] trailer. *)
val text : Hhbc.Repo.t -> diags:Diag.t list -> string

(** [json repo ~diags] — the same data as a JSON document with [functions],
    [diagnostics], [errors] and [warnings] fields. *)
val json : Hhbc.Repo.t -> diags:Diag.t list -> string
