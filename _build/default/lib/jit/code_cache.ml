module VF = Vasm.Vfunc

type placed = {
  vfunc : VF.t;
  order : int array;
  n_hot : int;
  offsets : int array;
  hot_base : int;
  hot_size : int;
  cold_base : int;
  cold_size : int;
}

type t = {
  hot_capacity : int;
  cold_capacity : int;
  hot_origin : int;
  cold_origin : int;
  mutable hot_cursor : int;
  mutable cold_cursor : int;
  mutable placed_rev : placed list;
  by_fid : (int, placed) Hashtbl.t;
}

let hot_origin = 0x1000_0000
let cold_origin = 0x3000_0000

(* Cold chunks are padded apart: HHVM's cold/frozen section is hundreds of
   megabytes, so a side exit lands on code that shares no lines or pages
   with anything recently executed.  Our synthetic app is ~1000x smaller;
   spacing each translation's cold chunk reproduces that dilution. *)
let cold_alignment = 16 * 1024

let create ?(hot_capacity = 128 * 1024 * 1024) ?(cold_capacity = 256 * 1024 * 1024) () =
  {
    hot_capacity;
    cold_capacity;
    hot_origin;
    cold_origin;
    hot_cursor = 0;
    cold_cursor = 0;
    placed_rev = [];
    by_fid = Hashtbl.create 64;
  }

let place t vfunc ~order ~n_hot =
  let blocks = vfunc.VF.blocks in
  if Array.length order <> Array.length blocks then
    invalid_arg "Code_cache.place: order length mismatch";
  let hot_size = ref 0 and cold_size = ref 0 in
  Array.iteri
    (fun i id ->
      let s = blocks.(id).VF.size in
      if i < n_hot then hot_size := !hot_size + s else cold_size := !cold_size + s)
    order;
  if t.hot_cursor + !hot_size > t.hot_capacity || t.cold_cursor + !cold_size > t.cold_capacity
  then None
  else begin
    let hot_base = t.hot_origin + t.hot_cursor in
    let cold_base = t.cold_origin + t.cold_cursor in
    let offsets = Array.make (Array.length blocks) 0 in
    let hot_off = ref hot_base and cold_off = ref cold_base in
    Array.iteri
      (fun i id ->
        if i < n_hot then begin
          offsets.(id) <- !hot_off;
          hot_off := !hot_off + blocks.(id).VF.size
        end
        else begin
          offsets.(id) <- !cold_off;
          cold_off := !cold_off + blocks.(id).VF.size
        end)
      order;
    let p =
      {
        vfunc;
        order = Array.copy order;
        n_hot;
        offsets;
        hot_base;
        hot_size = !hot_size;
        cold_base;
        cold_size = !cold_size;
      }
    in
    t.hot_cursor <- t.hot_cursor + !hot_size;
    t.cold_cursor <-
      t.cold_cursor + ((!cold_size + cold_alignment - 1) / cold_alignment * cold_alignment);
    t.placed_rev <- p :: t.placed_rev;
    Hashtbl.replace t.by_fid vfunc.VF.root_fid p;
    Some p
  end

let lookup t fid = Hashtbl.find_opt t.by_fid fid
let placed_list t = List.rev t.placed_rev
let used_hot t = t.hot_cursor
let used_cold t = t.cold_cursor

let reset t =
  t.hot_cursor <- 0;
  t.cold_cursor <- 0;
  t.placed_rev <- [];
  Hashtbl.reset t.by_fid

let block_addr p block_id = p.offsets.(block_id)
let entry_addr p = p.offsets.(p.vfunc.VF.entry)
