lib/workload/request.ml: Array Codegen Float Hhbc Interp Js_util Mh_runtime
