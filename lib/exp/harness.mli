(** Deterministic krun-style experiment harness: an N-seeds x M-configs
    matrix over the {!Js_sim} engines, per-server latency series binned,
    segmented ({!Changepoint}) and classified ({!Classify}), then aggregated
    into fleet-level distributions of time-to-steady-state and steady-state
    latency with bootstrap confidence intervals.

    Everything is reproducible from one integer seed: replicate seeds come
    from the {!Js_util.Rng} split-stream contract ({!derive_seeds}), every
    config in the matrix runs the {e same} replicate seeds (which is what
    makes {!Gate.compare_paired} comparisons paired), simulator runs are
    deterministic, and bootstrap CIs draw from a fixed-seed stream — so a
    whole-matrix rerun is byte-identical, including across [?domains]
    counts. *)

(** [derive_seeds ~seed ~n] derives [n] replicate seeds from a root seed,
    one {!Js_util.Rng.split} per replicate (child stream's first 62 bits).
    @raise Invalid_argument if [n < 1]. *)
val derive_seeds : seed:int -> n:int -> int array

(** [bin_series ~bin samples] reduces a time-ordered [(time, value)] stream
    to per-window means: window [k] covers [\[k*bin, (k+1)*bin)], empty
    windows are skipped, and each mean is stamped at its window center.
    @raise Invalid_argument if [bin <= 0]. *)
val bin_series : bin:float -> (float * float) array -> (float * float) array

(** [of_push cfg app] is a matrix runner for the single-region push
    simulator: runs it with [record_latency] forced on and returns the
    per-server (completion time, latency) streams. *)
val of_push :
  Js_sim.Push.config ->
  Workload.Macro_app.t ->
  seed:int ->
  (float * float) array array

(** One classified server run: cell [(config, seed)], server index within
    the fleet, and its classification. *)
type run_result = {
  config : string;
  seed : int;
  server : int;
  result : Classify.result;
}

(** [run ~configs ~seeds ()] executes the full matrix — every named config
    runner on every seed — and classifies every server series ([bin]-second
    windows, default 5; servers with no completions are dropped).  With
    [domains > 1] the cells fan out across OCaml domains via
    {!Js_util.Par.fork_join}; results are identical for any domain count.
    Results are ordered config-major, seed-minor, server-ascending.
    @raise Invalid_argument on an empty matrix. *)
val run :
  ?domains:int ->
  ?bin:float ->
  ?classify:Classify.config ->
  configs:(string * (seed:int -> (float * float) array array)) list ->
  seeds:int array ->
  unit ->
  run_result list

(** Fleet-level aggregate for one config: per-class counts (in
    {!Classify.all_classes} order over all seeds' servers), the
    time-to-steady-state distribution over runs that reached steady state
    (every class but {!Classify.No_steady_state}), and the steady-state
    latency distribution over all runs — each with its mean and a
    deterministic percentile-bootstrap CI ([(-1., (-1., -1.))] sentinels
    when the distribution is empty). *)
type summary = {
  s_config : string;
  runs : int;
  counts : (Classify.cls * int) list;
  tts : float array;
  tts_mean : float;
  tts_ci : float * float;
  steady : float array;
  steady_mean : float;
  steady_ci : float * float;
}

(** [summarize results] groups by config (first-appearance order).
    [ci_seed] (default [0x5eed]) seeds the bootstrap stream; [replicates]
    defaults to 300. *)
val summarize : ?ci_seed:int -> ?replicates:int -> run_result list -> summary list
