(* Discrete-event simulator tests: engine, arrivals, balancer policies,
   warmup curves and the rolling-push model. *)

module Engine = Js_sim.Engine
module Arrival = Js_sim.Arrival
module Balancer = Js_sim.Balancer
module Warmup_curve = Js_sim.Warmup_curve
module Push = Js_sim.Push
module S = Cluster.Server
module MA = Workload.Macro_app

let small_app =
  lazy
    (MA.generate
       { MA.default_params with
         MA.n_funcs = 4_000;
         core_funcs = 400;
         tail_p_max = 5e-3;
         instrs_per_request = 20.0e6
       })

let small_cfg =
  lazy
    { S.default_config with
      S.profile_request_target = 400;
      init_seconds_sequential = 20.;
      init_seconds_parallel = 8.;
      seeder_collect_seconds = 60.;
      traffic_ramp_seconds = 60.;
      cold_decay_seconds = 30.
    }

(* --- engine (closure baseline) --- *)

let test_engine_order () =
  let eng = Engine.Closure.create () in
  let fired = ref [] in
  let mark tag () = fired := (tag, Engine.Closure.now eng) :: !fired in
  Engine.Closure.schedule eng ~at:5. (mark "c");
  Engine.Closure.schedule eng ~at:1. (mark "a");
  Engine.Closure.schedule eng ~at:3. (mark "b");
  (* same-time events fire in insertion order *)
  Engine.Closure.schedule eng ~at:3. (mark "b2");
  Engine.Closure.run eng ~until:10.;
  Alcotest.(check (list (pair string (float 1e-9))))
    "time order with fifo ties"
    [ ("a", 1.); ("b", 3.); ("b2", 3.); ("c", 5.) ]
    (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock at horizon" 10. (Engine.Closure.now eng)

let test_engine_cascade_and_clamp () =
  let eng = Engine.Closure.create () in
  let fired = ref [] in
  Engine.Closure.schedule eng ~at:2. (fun () ->
      (* events scheduled in the past fire at the current time, not before *)
      Engine.Closure.schedule eng ~at:1. (fun () ->
          fired := ("late", Engine.Closure.now eng) :: !fired);
      Engine.Closure.after eng ~delay:1. (fun () ->
          fired := ("next", Engine.Closure.now eng) :: !fired));
  Engine.Closure.run eng ~until:10.;
  Alcotest.(check (list (pair string (float 1e-9))))
    "clamped then cascaded"
    [ ("late", 2.); ("next", 3.) ]
    (List.rev !fired);
  Alcotest.(check int) "all dispatched" 3 (Engine.Closure.dispatched eng);
  Alcotest.(check int) "queue drained" 0 (Engine.Closure.pending eng)

let test_engine_run_stops_at_until () =
  let eng = Engine.Closure.create () in
  let fired = ref 0 in
  Engine.Closure.schedule eng ~at:5. (fun () -> incr fired);
  Engine.Closure.run eng ~until:4.;
  Alcotest.(check int) "not yet" 0 !fired;
  Engine.Closure.run eng ~until:6.;
  Alcotest.(check int) "fired on resume" 1 !fired

(* --- engine (flat event representation) --- *)

type flat_ev = Fnone | Mark of string | Cascade

let test_flat_engine_order () =
  let eng = Engine.create ~dummy:Fnone () in
  let fired = ref [] in
  let dispatch eng ev =
    match ev with
    | Mark tag -> fired := (tag, Engine.now eng) :: !fired
    | Fnone | Cascade -> Alcotest.fail "unexpected event"
  in
  Engine.schedule eng ~at:5. (Mark "c");
  Engine.schedule eng ~at:1. (Mark "a");
  Engine.schedule eng ~at:3. (Mark "b");
  Engine.schedule eng ~at:3. (Mark "b2");
  Engine.run eng ~until:10. ~dispatch;
  Alcotest.(check (list (pair string (float 1e-9))))
    "time order with fifo ties"
    [ ("a", 1.); ("b", 3.); ("b2", 3.); ("c", 5.) ]
    (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock at horizon" 10. (Engine.now eng);
  Alcotest.(check int) "dispatched" 4 (Engine.dispatched eng);
  Alcotest.(check int) "drained" 0 (Engine.pending eng)

let test_flat_engine_cascade_clamp_resume () =
  let eng = Engine.create ~dummy:Fnone () in
  let fired = ref [] in
  let dispatch eng ev =
    match ev with
    | Cascade ->
      (* events scheduled in the past fire at the current time, not before *)
      Engine.schedule eng ~at:1. (Mark "late");
      Engine.after eng ~delay:1. (Mark "next")
    | Mark tag -> fired := (tag, Engine.now eng) :: !fired
    | Fnone -> Alcotest.fail "dummy dispatched"
  in
  Engine.schedule eng ~at:2. Cascade;
  Engine.schedule eng ~at:8. (Mark "tail");
  Engine.run eng ~until:4. ~dispatch;
  Alcotest.(check (list (pair string (float 1e-9))))
    "clamped then cascaded, stops at until"
    [ ("late", 2.); ("next", 3.) ]
    (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock at barrier" 4. (Engine.now eng);
  Engine.run eng ~until:10. ~dispatch;
  Alcotest.(check (list (pair string (float 1e-9))))
    "resumed past barrier"
    [ ("late", 2.); ("next", 3.); ("tail", 8.) ]
    (List.rev !fired);
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Engine.schedule: NaN time")
    (fun () -> Engine.schedule eng ~at:Float.nan Fnone)

let test_flat_engine_churn () =
  (* self-rescheduling sources: the queue stays small while dispatching many
     events, exercising the slot-pool reuse path *)
  let eng = Engine.create ~dummy:Fnone () in
  let count = ref 0 in
  let dispatch eng ev =
    match ev with
    | Mark _ ->
      incr count;
      if Engine.now eng < 999. then Engine.after eng ~delay:1. ev
    | Fnone | Cascade -> Alcotest.fail "unexpected event"
  in
  for i = 0 to 9 do
    Engine.schedule eng ~at:(float_of_int i /. 10.) (Mark (string_of_int i))
  done;
  Engine.run eng ~until:2000. ~dispatch;
  Alcotest.(check int) "all dispatched" 10_000 !count;
  Alcotest.(check int) "drained" 0 (Engine.pending eng)

let test_flat_engine_step_to () =
  (* the arrival-batching hooks: [horizon] exposes the active run's [until],
     [next_event_at] the queue head (infinity when empty), and [step_to]
     performs the clock/dispatch bookkeeping of an inline-consumed event *)
  let eng = Engine.create ~dummy:Fnone () in
  Alcotest.(check (float 1e-9)) "horizon before any run" 0. (Engine.horizon eng);
  Alcotest.(check bool) "empty queue head is infinity" true
    (Engine.next_event_at eng = infinity);
  let dispatch eng ev =
    match ev with
    | Mark "probe" ->
      Alcotest.(check (float 1e-9)) "horizon inside run" 10. (Engine.horizon eng);
      Alcotest.(check (float 1e-9)) "queue head visible" 7. (Engine.next_event_at eng);
      (* consume a synthetic event strictly before the queue head *)
      Engine.step_to eng ~at:5.;
      Alcotest.(check (float 1e-9)) "clock moved to the inline event" 5. (Engine.now eng)
    | Mark _ -> ()
    | Fnone | Cascade -> Alcotest.fail "unexpected event"
  in
  Engine.schedule eng ~at:2. (Mark "probe");
  Engine.schedule eng ~at:7. (Mark "tail");
  Engine.run eng ~until:10. ~dispatch;
  Alcotest.(check int) "inline step counted as dispatched" 3 (Engine.dispatched eng);
  (* step_to is monotone: stepping into the past leaves the clock alone *)
  Engine.step_to eng ~at:1.;
  Alcotest.(check (float 1e-9)) "no clock rewind" 10. (Engine.now eng);
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Engine.step_to: NaN time")
    (fun () -> Engine.step_to eng ~at:Float.nan)

(* --- arrivals --- *)

let test_arrival_monotone_and_rate () =
  let cfg = { Arrival.base_rps = 50.; diurnal_amplitude = 0.; diurnal_period = 3600.; phase = 0. } in
  let a = Arrival.create cfg (Js_util.Rng.create 11) in
  let t = ref 0. and count = ref 0 in
  while !t < 200. do
    let next = Arrival.next a ~after:!t in
    Alcotest.(check bool) "strictly increasing" true (next > !t);
    t := next;
    incr count
  done;
  (* 50 rps over 200 s = 10_000 expected; Poisson sd ~ 100 *)
  Alcotest.(check bool)
    (Printf.sprintf "rate about 50 rps (got %d/200s)" !count)
    true
    (!count > 9_000 && !count < 11_000)

let test_arrival_diurnal_peak_rate () =
  let cfg = { Arrival.base_rps = 100.; diurnal_amplitude = 0.5; diurnal_period = 1000.; phase = 0. } in
  Alcotest.(check (float 1e-9)) "peak" 150. (Arrival.peak_rate cfg);
  Alcotest.(check (float 1e-6)) "crest" 150. (Arrival.rate_at cfg 250.);
  Alcotest.(check (float 1e-6)) "trough" 50. (Arrival.rate_at cfg 750.);
  (* a phase offset slides the whole curve: region at phase p sees at t what
     the base region sees at t + p *)
  let shifted = { cfg with Arrival.phase = 250. } in
  Alcotest.(check (float 1e-6)) "phase shifts crest" 150. (Arrival.rate_at shifted 0.);
  Alcotest.(check (float 1e-6)) "phase shifts trough" 50. (Arrival.rate_at shifted 500.);
  (* thinning must still produce roughly base_rps on average over a cycle *)
  let a = Arrival.create cfg (Js_util.Rng.create 3) in
  let t = ref 0. and count = ref 0 in
  while !t < 1000. do
    t := Arrival.next a ~after:!t;
    incr count
  done;
  Alcotest.(check bool)
    (Printf.sprintf "mean rate about 100 rps (got %d/1000s)" !count)
    true
    (!count > 90_000 && !count < 110_000)

let test_arrival_validates () =
  Alcotest.check_raises "negative rate" (Invalid_argument "Arrival: base_rps must be positive")
    (fun () ->
      ignore
        (Arrival.create
           { Arrival.base_rps = -1.; diurnal_amplitude = 0.; diurnal_period = 1.; phase = 0. }
           (Js_util.Rng.create 1)))

(* --- balancer --- *)

let outstanding_of arr ix = arr.(ix)

let test_balancer_least_outstanding () =
  let b = Balancer.create Balancer.Least_outstanding in
  let rng = Js_util.Rng.create 1 in
  let picked =
    Balancer.pick b rng ~candidates:[| 3; 1; 7 |]
      ~outstanding:(outstanding_of [| 9; 5; 9; 2; 9; 9; 9; 1 |])
      ~capacity:(fun _ -> 0.)
      ()
  in
  Alcotest.(check (option int)) "argmin outstanding" (Some 7) picked;
  (* the ?n prefix restricts the candidate set without rebuilding the array:
     server 7 (outstanding 1) is beyond the prefix, so server 3 (2) wins *)
  let picked2 =
    Balancer.pick b rng ~n:2 ~candidates:[| 3; 1; 7 |]
      ~outstanding:(outstanding_of [| 9; 5; 9; 2; 9; 9; 9; 1 |])
      ~capacity:(fun _ -> 0.)
      ()
  in
  Alcotest.(check (option int)) "argmin over prefix" (Some 3) picked2

let test_balancer_round_robin_cycles () =
  let b = Balancer.create Balancer.Round_robin in
  let rng = Js_util.Rng.create 1 in
  let picks =
    List.init 6 (fun _ ->
        match
          Balancer.pick b rng ~candidates:[| 4; 5; 6 |]
            ~outstanding:(fun _ -> 0)
            ~capacity:(fun _ -> 0.)
            ()
        with
        | Some ix -> ix
        | None -> -1)
  in
  Alcotest.(check (list int)) "cycles candidates" [ 4; 5; 6; 4; 5; 6 ] picks

let test_balancer_weighted_prefers_capacity () =
  let b = Balancer.create Balancer.Warmup_weighted in
  let rng = Js_util.Rng.create 5 in
  let capacity = function 0 -> 99. | _ -> 1. in
  let hits = Array.make 2 0 in
  for _ = 1 to 500 do
    match
      Balancer.pick b rng ~candidates:[| 0; 1 |] ~outstanding:(fun _ -> 0) ~capacity ()
    with
    | Some ix -> hits.(ix) <- hits.(ix) + 1
    | None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hot server gets most traffic (%d/500)" hits.(0))
    true
    (hits.(0) > 450)

let test_balancer_empty () =
  let rng = Js_util.Rng.create 1 in
  List.iter
    (fun p ->
      let b = Balancer.create p in
      Alcotest.(check (option int))
        (Balancer.policy_to_string p ^ " empty")
        None
        (Balancer.pick b rng ~candidates:[||] ~outstanding:(fun _ -> 0)
           ~capacity:(fun _ -> 0.)
           ()))
    Balancer.all_policies

let test_balancer_pick_region () =
  (* scans round-robin from the cursor, skipping home and down regions *)
  let up r = r <> 2 in
  (match Balancer.pick_region ~home:0 ~n_regions:4 ~cursor:0 ~up with
  | Some (r, cur) ->
    Alcotest.(check int) "first up foreign region" 1 r;
    Alcotest.(check int) "cursor advanced" 2 cur
  | None -> Alcotest.fail "expected a target");
  (match Balancer.pick_region ~home:0 ~n_regions:4 ~cursor:2 ~up with
  | Some (r, _) -> Alcotest.(check int) "skips down region" 3 r
  | None -> Alcotest.fail "expected a target");
  Alcotest.(check bool) "no target when all else down" true
    (Balancer.pick_region ~home:0 ~n_regions:4 ~cursor:0 ~up:(fun r -> r = 0) = None);
  Alcotest.(check bool) "single region has no foreign target" true
    (Balancer.pick_region ~home:0 ~n_regions:1 ~cursor:0 ~up:(fun _ -> true) = None)

let test_balancer_policy_names_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Balancer.policy_to_string p)
        true
        (Balancer.policy_of_string (Balancer.policy_to_string p) = Some p))
    Balancer.all_policies

(* --- warmup curves --- *)

let test_warmup_curve_shapes () =
  let app = Lazy.force small_app and cfg = Lazy.force small_cfg in
  let nojs = Warmup_curve.build ~horizon:1200. cfg app S.No_jumpstart in
  let pkg = S.make_package cfg app ~coverage_target:cfg.S.profile_request_target () in
  let consumer = Warmup_curve.build ~horizon:1200. cfg app (S.Consumer pkg) in
  (* cold servers are slower than warm ones, and the curve decays *)
  let cold = Warmup_curve.multiplier nojs ~served:0. in
  let warm = Warmup_curve.multiplier nojs ~served:(Warmup_curve.warm_served nojs) in
  Alcotest.(check bool)
    (Printf.sprintf "cold multiplier > warm (%.2f > %.2f)" cold warm)
    true (cold > warm);
  Alcotest.(check bool) "warm multiplier about 1" true (warm < 1.1);
  Alcotest.(check bool) "multiplier never below 1" true (warm >= 1.);
  (* Jump-Start consumers boot faster (parallel warmup, no seq requests) *)
  Alcotest.(check bool)
    (Printf.sprintf "consumer boots faster (%.0fs < %.0fs)"
       (Warmup_curve.boot_seconds consumer) (Warmup_curve.boot_seconds nojs))
    true
    (Warmup_curve.boot_seconds consumer < Warmup_curve.boot_seconds nojs);
  (* and their early-life multiplier is lower: optimized code from request 1 *)
  let cold_consumer = Warmup_curve.multiplier consumer ~served:0. in
  Alcotest.(check bool)
    (Printf.sprintf "consumer starts warmer (%.2f < %.2f)" cold_consumer cold)
    true (cold_consumer < cold)

let test_warmup_curve_cache_reuses () =
  let app = Lazy.force small_app and cfg = Lazy.force small_cfg in
  let cache = Warmup_curve.create_cache ~horizon:400. cfg app in
  let a = Warmup_curve.get cache S.No_jumpstart in
  let b = Warmup_curve.get cache S.No_jumpstart in
  Alcotest.(check bool) "no-js slot memoized" true (a == b);
  let pkg = S.make_package cfg app ~coverage_target:cfg.S.profile_request_target () in
  let c1 = Warmup_curve.get cache (S.Consumer pkg) in
  let c2 = Warmup_curve.get cache (S.Consumer pkg) in
  Alcotest.(check bool) "per-package slot memoized" true (c1 == c2);
  Alcotest.(check bool) "distinct from no-js" true (c1 != a)

(* --- push --- *)

let push_cfg =
  lazy
    (let fleet =
       { Cluster.Fleet.default_config with
         Cluster.Fleet.n_servers = 8;
         n_buckets = 2;
         seeders_per_bucket = 2;
         server = Lazy.force small_cfg
       }
     in
     { Push.default_config with
       Push.fleet;
       warm_rps = 30.;
       arrival =
         { Arrival.default_config with Arrival.base_rps = 8. *. 30. *. 0.7 };
       push_at = 40.;
       drain_cap = 2;
       duration = 240.;
       curve_horizon = 900.
     })

let test_push_conservation () =
  let stats = Push.run (Lazy.force push_cfg) (Lazy.force small_app) ~seed:1 in
  let shed =
    stats.Push.shed_queue_full + stats.Push.shed_timeout + stats.Push.shed_no_server
    + stats.Push.shed_drain
  in
  (* every arrival either completed, was shed, or is still in the system *)
  let in_system = stats.Push.arrived - stats.Push.completed - shed in
  Alcotest.(check bool)
    (Printf.sprintf "in-system requests bounded (%d)" in_system)
    true
    (in_system >= 0 && in_system <= 8 * (8 + 64));
  Alcotest.(check int) "everyone restarted jump-started" 8 stats.Push.jump_started;
  Alcotest.(check int) "no fallbacks" 0 stats.Push.fallbacks;
  Alcotest.(check int) "no crashes" 0 stats.Push.crashes;
  Alcotest.(check int) "bucket jump-start sum" stats.Push.jump_started
    (Array.fold_left ( + ) 0 stats.Push.bucket_jump_started);
  Alcotest.(check bool) "push completed" true (stats.Push.push_done >= 0.);
  Alcotest.(check bool) "capacity recovered" true (stats.Push.time_to_full_capacity >= 0.);
  Alcotest.(check bool) "latency recorded" true
    (Js_util.Stats.Quantile.count stats.Push.latency > 0);
  Alcotest.(check bool) "push-window latency recorded" true
    (Js_util.Stats.Quantile.count stats.Push.latency_push > 0)

let test_push_jumpstart_beats_baseline () =
  let cfg = Lazy.force push_cfg in
  let app = Lazy.force small_app in
  let js = Push.run cfg app ~seed:7 in
  let nojs = Push.run { cfg with Push.jumpstart = false } app ~seed:7 in
  Alcotest.(check bool)
    (Printf.sprintf "smaller capacity loss (%.0f < %.0f)" js.Push.capacity_loss_integral
       nojs.Push.capacity_loss_integral)
    true
    (js.Push.capacity_loss_integral < nojs.Push.capacity_loss_integral);
  let ttfc s = if s.Push.time_to_full_capacity >= 0. then s.Push.time_to_full_capacity else infinity in
  Alcotest.(check bool) "faster back to full capacity" true (ttfc js < ttfc nojs);
  Alcotest.(check int) "baseline never jump-starts" 0 nojs.Push.jump_started

let test_push_deterministic () =
  let cfg = Lazy.force push_cfg in
  let app = Lazy.force small_app in
  let a = Push.run cfg app ~seed:3 and b = Push.run cfg app ~seed:3 in
  Alcotest.(check string) "same digest" (Push.digest a) (Push.digest b);
  let c = Push.run cfg app ~seed:4 in
  Alcotest.(check bool) "different seed differs" true (Push.digest a <> Push.digest c)

let test_push_record_latency_digest_neutral () =
  let cfg = Lazy.force push_cfg in
  let app = Lazy.force small_app in
  let off = Push.run cfg app ~seed:3 in
  let on_ = Push.run { cfg with Push.record_latency = true } app ~seed:3 in
  (* recording draws no randomness and is excluded from the digest: the
     simulation must be bit-for-bit unchanged *)
  Alcotest.(check string) "same digest with recording on" (Push.digest off) (Push.digest on_);
  Alcotest.(check int) "off: no per-server series" 0 (Array.length off.Push.server_latency);
  Alcotest.(check int) "on: one series per server" 8 (Array.length on_.Push.server_latency);
  let total =
    Array.fold_left
      (fun acc s -> acc + Js_util.Stats.Series.length s)
      0 on_.Push.server_latency
  in
  Alcotest.(check int) "per-server samples cover every completion" on_.Push.completed total;
  Array.iter
    (fun s ->
      let a = Js_util.Stats.Series.to_array s in
      Array.iter
        (fun (t, l) ->
          if t < 0. || t > 240. || l <= 0. then
            Alcotest.failf "sample out of range: t=%g latency=%g" t l)
        a)
    on_.Push.server_latency

let test_push_bad_packages_crash_and_guardrail () =
  let cfg = Lazy.force push_cfg in
  let app = Lazy.force small_app in
  let server =
    (* crash fast enough that the spike lands while restarts are pending *)
    { (Lazy.force small_cfg) with S.crash_delay_seconds = 5. }
  in
  let cfg =
    { cfg with
      Push.fleet =
        { cfg.Push.fleet with Cluster.Fleet.validation_catch_rate = 0.; server };
      bad_package_rate = 1.0;
      abort_window = 120.;
      abort_threshold = 2
    }
  in
  let stats = Push.run cfg app ~seed:2 in
  Alcotest.(check bool) "consumers crashed" true (stats.Push.crashes > 0);
  Alcotest.(check bool) "guardrail aborted the push" true stats.Push.aborted;
  Alcotest.(check int) "bucket fallback sum" stats.Push.fallbacks
    (Array.fold_left ( + ) 0 stats.Push.bucket_fallbacks)

let test_push_telemetry () =
  let tel = Js_telemetry.create () in
  let stats = Push.run ~telemetry:tel (Lazy.force push_cfg) (Lazy.force small_app) ~seed:1 in
  Alcotest.(check int) "sim.requests counter" stats.Push.arrived
    (Js_telemetry.counter tel "sim.requests");
  Alcotest.(check int) "sim.completed counter" stats.Push.completed
    (Js_telemetry.counter tel "sim.completed");
  Alcotest.(check int) "sim.jump_started counter" stats.Push.jump_started
    (Js_telemetry.counter tel "sim.jump_started");
  Alcotest.(check bool) "json exports" true
    (Js_telemetry.Json.parses (Js_telemetry.to_json tel))

(* --- multi-region --- *)

module Region = Js_sim.Region

let global_cfg =
  lazy
    { Region.default_global_config with
      Region.base = Lazy.force push_cfg;
      n_regions = 3;
      region_phase = 300.;
      push_stagger = 30.;
      spillover = true;
      spill_latency = 20.;
      epoch = 20.
    }

let test_multiregion_region_loss () =
  let gcfg =
    { (Lazy.force global_cfg) with
      Region.disasters = [ Region.Region_loss { region = 1; at = 100. } ]
    }
  in
  let gs = Region.run_global gcfg (Lazy.force small_app) ~seed:5 in
  let r = gs.Region.g_regions in
  Alcotest.(check int) "three regions" 3 (Array.length r);
  Alcotest.(check bool) "region 1 lost" true r.(1).Region.lost;
  Alcotest.(check bool) "others not lost" true
    ((not r.(0).Region.lost) && not r.(2).Region.lost);
  (* a region loss drains servers via generation bumps — never crashes *)
  Array.iter (fun s -> Alcotest.(check int) "zero crashes" 0 s.Region.crashes) r;
  Alcotest.(check bool)
    (Printf.sprintf "lost region spills its load out (%d)" r.(1).Region.spilled_out)
    true
    (r.(1).Region.spilled_out > 0);
  let spilled_in = Array.fold_left (fun a s -> a + s.Region.spilled_in) 0 r in
  Alcotest.(check bool)
    (Printf.sprintf "surviving regions absorb spills (%d)" spilled_in)
    true (spilled_in > 0);
  Alcotest.(check bool) "global spill total" true (gs.Region.g_spilled > 0);
  (* seeding runs in region 0 only *)
  Alcotest.(check bool) "seeder region published" true (r.(0).Region.packages_published > 0);
  Alcotest.(check int) "non-seeder regions do not publish" 0 r.(2).Region.packages_published

let test_multiregion_epoch_equals_merged () =
  let gcfg = Lazy.force global_cfg in
  let app = Lazy.force small_app in
  let epoch = Region.run_global ~mode:`Epoch gcfg app ~seed:11 in
  let merged = Region.run_global ~mode:`Merged gcfg app ~seed:11 in
  Alcotest.(check string) "epoch-barrier run == merged run"
    (Region.global_digest merged) (Region.global_digest epoch);
  let epoch2 = Region.run_global ~mode:`Epoch gcfg app ~seed:11 in
  Alcotest.(check string) "same seed reproduces" (Region.global_digest epoch)
    (Region.global_digest epoch2);
  let other = Region.run_global ~mode:`Epoch gcfg app ~seed:12 in
  Alcotest.(check bool) "different seed differs" true
    (Region.global_digest epoch <> Region.global_digest other)

let test_multiregion_parallel_equals_epoch () =
  (* the parallel tentpole under fire: a region loss mid-push on concurrent
     domains must reproduce the sequential epoch-barrier digest exactly, for
     any domain count (1 = sequential replay; 4 clamps to n_regions = 3) *)
  let gcfg =
    { (Lazy.force global_cfg) with
      Region.disasters = [ Region.Region_loss { region = 1; at = 100. } ]
    }
  in
  let app = Lazy.force small_app in
  let e = Region.global_digest (Region.run_global ~mode:`Epoch gcfg app ~seed:5) in
  List.iter
    (fun domains ->
      let p = Region.run_global ~mode:(`Parallel domains) gcfg app ~seed:5 in
      Alcotest.(check string)
        (Printf.sprintf "parallel(%d) digest == epoch" domains)
        e (Region.global_digest p);
      Array.iter
        (fun s -> Alcotest.(check int) "zero crashes" 0 s.Region.crashes)
        p.Region.g_regions)
    [ 1; 2; 4 ]

let test_multiregion_batching_digest_neutral () =
  (* arrival batching is a pure fast path: turning it off must not move a
     single byte of the digest, in either execution mode *)
  let gcfg = Lazy.force global_cfg in
  let app = Lazy.force small_app in
  let off = { gcfg with Region.batch = false } in
  Alcotest.(check string) "epoch: batch on == off"
    (Region.global_digest (Region.run_global ~mode:`Epoch off app ~seed:11))
    (Region.global_digest (Region.run_global ~mode:`Epoch gcfg app ~seed:11));
  Alcotest.(check string) "parallel: batch on == off"
    (Region.global_digest (Region.run_global ~mode:(`Parallel 2) off app ~seed:11))
    (Region.global_digest (Region.run_global ~mode:(`Parallel 2) gcfg app ~seed:11))

let test_multiregion_validates () =
  let gcfg = { (Lazy.force global_cfg) with Region.spill_latency = 5.; epoch = 20. } in
  Alcotest.check_raises "spill latency below epoch"
    (Invalid_argument "Region: spill_latency must be >= epoch") (fun () ->
      ignore (Region.run_global gcfg (Lazy.force small_app) ~seed:1))

let () =
  Alcotest.run "sim"
    [ ( "engine",
        [ Alcotest.test_case "event order + fifo ties" `Quick test_engine_order;
          Alcotest.test_case "cascade + past clamp" `Quick test_engine_cascade_and_clamp;
          Alcotest.test_case "run stops at until" `Quick test_engine_run_stops_at_until;
          Alcotest.test_case "flat: order + fifo ties" `Quick test_flat_engine_order;
          Alcotest.test_case "flat: cascade/clamp/resume" `Quick
            test_flat_engine_cascade_clamp_resume;
          Alcotest.test_case "flat: slot-pool churn" `Quick test_flat_engine_churn;
          Alcotest.test_case "flat: step_to/horizon/next_event_at" `Quick
            test_flat_engine_step_to
        ] );
      ( "arrival",
        [ Alcotest.test_case "monotone, correct rate" `Quick test_arrival_monotone_and_rate;
          Alcotest.test_case "diurnal curve" `Quick test_arrival_diurnal_peak_rate;
          Alcotest.test_case "validation" `Quick test_arrival_validates
        ] );
      ( "balancer",
        [ Alcotest.test_case "least outstanding" `Quick test_balancer_least_outstanding;
          Alcotest.test_case "round robin" `Quick test_balancer_round_robin_cycles;
          Alcotest.test_case "warmup weighted" `Quick test_balancer_weighted_prefers_capacity;
          Alcotest.test_case "empty candidates" `Quick test_balancer_empty;
          Alcotest.test_case "policy names" `Quick test_balancer_policy_names_roundtrip;
          Alcotest.test_case "pick_region round-robin" `Quick test_balancer_pick_region
        ] );
      ( "warmup curve",
        [ Alcotest.test_case "shapes" `Quick test_warmup_curve_shapes;
          Alcotest.test_case "cache" `Quick test_warmup_curve_cache_reuses
        ] );
      ( "push",
        [ Alcotest.test_case "conservation + smoke" `Quick test_push_conservation;
          Alcotest.test_case "jump-start beats baseline" `Quick
            test_push_jumpstart_beats_baseline;
          Alcotest.test_case "deterministic" `Quick test_push_deterministic;
          Alcotest.test_case "latency recording digest-neutral" `Quick
            test_push_record_latency_digest_neutral;
          Alcotest.test_case "bad packages + guardrail" `Quick
            test_push_bad_packages_crash_and_guardrail;
          Alcotest.test_case "telemetry" `Quick test_push_telemetry
        ] );
      ( "region",
        [ Alcotest.test_case "region loss spills, never crashes" `Quick
            test_multiregion_region_loss;
          Alcotest.test_case "epoch == merged digest" `Quick
            test_multiregion_epoch_equals_merged;
          Alcotest.test_case "parallel == epoch digest under region loss" `Quick
            test_multiregion_parallel_equals_epoch;
          Alcotest.test_case "arrival batching digest-neutral" `Quick
            test_multiregion_batching_digest_neutral;
          Alcotest.test_case "validation" `Quick test_multiregion_validates
        ] )
    ]
