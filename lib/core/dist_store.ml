module R = Js_util.Rng
module Backoff = Js_util.Backoff

type network = {
  fetch_fail_rate : float;
  fetch_timeout : float;
  latency_mean : float;
  tail_prob : float;
  tail_alpha : float;
  stale_rate : float;
}

let default_network =
  {
    fetch_fail_rate = 0.;
    fetch_timeout = 0.;
    latency_mean = 0.;
    tail_prob = 0.;
    tail_alpha = 1.5;
    stale_rate = 0.;
  }

let network_active n =
  n.fetch_fail_rate > 0. || n.fetch_timeout > 0. || n.latency_mean > 0. || n.stale_rate > 0.

type t = {
  store : Store.t;
  net : network;
  backoff : Backoff.config;
  ttl_seconds : float;
  regions : int array;
  cross_region : bool;
  expected_fingerprint : int option;
}

let create ?(network = default_network) ?(backoff = Backoff.default) ?(ttl_seconds = 0.)
    ?(cross_region = false) ?(regions = [| 0 |]) ?repo store =
  {
    store;
    net = network;
    backoff;
    ttl_seconds;
    regions;
    cross_region;
    (* O(bytecode), so hash the build once here rather than per fetch *)
    expected_fingerprint = Option.map Hhbc.Repo.fingerprint repo;
  }

let store t = t.store
let active t = network_active t.net

type reject_kind = Stale_replica | Fingerprint_mismatch | Ttl_expired

(* Per-kind reject counters: the salvage path treats a fingerprint mismatch
   as recoverable (match the embedded shape against the live repo) while a
   forced-stale replica or TTL expiry stays terminal, so lumping them into
   one counter would hide exactly the split that matters. *)
let reject_counter = function
  | Stale_replica -> "dist.stale_replica"
  | Fingerprint_mismatch -> "dist.fingerprint_mismatch"
  | Ttl_expired -> "dist.ttl_expired"

type fetch_result =
  | Delivered of { bytes : string; meta : Package.meta; region : int; delay : float }
  | Rejected of {
      kind : reject_kind;
      reason : string;
      bytes : string;
      meta : Package.meta;
      delay : float;
    }
  | Unavailable of { reason : string; delay : float }
  | No_package

(* The staleness gate (§VII profile reuse): a delivered package is unusable —
   as opposed to unreachable — when it was built against a different repo or
   has outlived its TTL.  Gate verdicts are deterministic; [forced_stale]
   models a replica that still serves the previous release's package. *)
let gate t ~now ~forced_stale (meta : Package.meta) =
  if forced_stale then Error (Stale_replica, "stale replica: package from a previous release")
  else
    match t.expected_fingerprint with
    | Some fp when meta.Package.repo_fingerprint <> fp ->
      Error
        ( Fingerprint_mismatch,
          Printf.sprintf "repo fingerprint mismatch: package %x <> repo %x (stale release)"
            (meta.Package.repo_fingerprint land 0xffffff)
            (fp land 0xffffff) )
    | Some _ | None ->
      let age = now -. float_of_int meta.Package.published_at in
      if t.ttl_seconds > 0. && age > t.ttl_seconds then
        Error
          (Ttl_expired, Printf.sprintf "package expired: age %.0fs > ttl %.0fs" age t.ttl_seconds)
      else Ok ()

let fetch ?telemetry t rng ~now ~region:home ~bucket =
  let tel f =
    match telemetry with
    | Some s -> f s
    | None -> ()
  in
  let delay = ref 0. in
  let failures = ref 0 and timeouts = ref 0 and saw_package = ref false in
  (* One network attempt against one region's replica set.  Randomness is
     consumed strictly in this order, each draw guarded by its rate so an
     all-zero network performs exactly the one selection draw Store does. *)
  let try_once ~region ~cross =
    tel (fun s ->
        Js_telemetry.incr s "dist.fetch_attempts";
        if cross then Js_telemetry.incr s "dist.cross_region");
    if t.net.fetch_fail_rate > 0. && R.bool rng t.net.fetch_fail_rate then begin
      incr failures;
      tel (fun s -> Js_telemetry.incr s "dist.fetch_failures");
      `Retry
    end
    else begin
      let lat =
        if t.net.latency_mean <= 0. then 0.
        else if t.net.tail_prob > 0. && R.bool rng t.net.tail_prob then
          R.pareto rng ~alpha:t.net.tail_alpha ~x_min:t.net.latency_mean
        else R.exponential rng ~mean:t.net.latency_mean
      in
      if t.net.fetch_timeout > 0. && lat > t.net.fetch_timeout then begin
        incr timeouts;
        delay := !delay +. t.net.fetch_timeout;
        tel (fun s -> Js_telemetry.incr s "dist.timeouts");
        `Retry
      end
      else
        match Store.pick_random ?telemetry t.store rng ~region ~bucket with
        | None -> `Empty
        | Some (bytes, meta) -> (
          saw_package := true;
          delay := !delay +. lat;
          let forced_stale = t.net.stale_rate > 0. && R.bool rng t.net.stale_rate in
          match gate t ~now ~forced_stale meta with
          | Ok () ->
            tel (fun s ->
                Js_telemetry.observe s ~lo:0. ~hi:120. ~buckets:24 "dist.fetch_seconds" lat);
            `Delivered (bytes, meta, region)
          | Error (kind, reason) ->
            tel (fun s ->
                (* aggregate kept for dashboards/invariants; the split is
                   what the salvage path keys on *)
                Js_telemetry.incr s "dist.stale_rejects";
                Js_telemetry.incr s (reject_counter kind));
            `Stale (kind, reason, bytes, meta))
    end
  in
  (* The fetch ladder: bounded retries with backoff against the home region,
     then one attempt per foreign region, then give up. *)
  let rec home_attempts k =
    if k >= t.backoff.Backoff.max_attempts then `Exhausted
    else
      match try_once ~region:home ~cross:false with
      | (`Delivered _ | `Stale _) as final -> final
      | `Empty -> `Exhausted (* the replica set is static; retrying cannot help *)
      | `Retry ->
        if k + 1 < t.backoff.Backoff.max_attempts then
          delay := !delay +. Backoff.delay t.backoff rng ~attempt:k;
        home_attempts (k + 1)
  in
  let rec foreign_regions = function
    | [] -> `Exhausted
    | r :: rest -> (
      match try_once ~region:r ~cross:true with
      | (`Delivered _ | `Stale _) as final -> final
      | `Empty | `Retry -> foreign_regions rest)
  in
  let verdict =
    match home_attempts 0 with
    | `Exhausted when t.cross_region ->
      foreign_regions (List.filter (fun r -> r <> home) (Array.to_list t.regions))
    | v -> v
  in
  tel (fun s ->
      if !delay > 0. then begin
        let clock = Js_telemetry.clock s in
        Js_telemetry.add_span s "dist.fetch_wait" ~start:(Js_telemetry.Clock.now clock)
          ~dur:!delay;
        Js_telemetry.Clock.advance clock !delay
      end);
  match verdict with
  | `Delivered (bytes, meta, region) -> Delivered { bytes; meta; region; delay = !delay }
  | `Stale (kind, reason, bytes, meta) -> Rejected { kind; reason; bytes; meta; delay = !delay }
  | `Exhausted ->
    if (not !saw_package) && !failures = 0 && !timeouts = 0 then No_package
    else
      Unavailable
        {
          reason =
            Printf.sprintf "network unavailable after %d failures and %d timeouts" !failures
              !timeouts;
          delay = !delay;
        }
