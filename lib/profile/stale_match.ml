(* BOLT-style stale-profile matching (paper §VI-B; PAPERS.md: BOLT, and the
   PGO survey's stale-profile sections).

   A Jump-Start package is profiled against one build of the application.  A
   code push produces a new build whose entity ids (function/class/string/
   name/unit tables) and basic-block structure have shifted, so raw counters
   cannot be imported directly.  Instead every package embeds a *match
   table* ({!shape}): per-function qualified names plus id-free structural
   hashes at function and block granularity, computed against the build the
   seeder profiled.  The salvage path decodes the stale package leniently
   ({!read_raw_counters}), matches old entities onto the live repo
   ({!transfer}) and rebuilds a counter set that passes the consumer's
   P300-P321 consistency gates — counters for unmatched or now-infeasible
   regions are dropped, never imported blind.

   Matching ladder (functions): qualified name first (strict-hash pairs
   within a name group, then positional), then strict structural hash over
   the unmatched (rename detection — a renamed-but-unchanged body keeps its
   hash), then loose hash (renamed + id drift).  Blocks are matched only
   *within* a matched function pair — never across functions, so trivially
   identical blocks (e.g. [LitInt; Ret]) in different functions cannot
   attribute counters to the wrong one — strict hash first, then loose,
   each group paired in block order (positional tie-break). *)

module I = Hhbc.Instr
module F = Hhbc.Func
module Repo = Hhbc.Repo
module W = Js_util.Binio.Writer
module Rd = Js_util.Binio.Reader

(* --- id-free structural hashing -------------------------------------- *)

(* Strict hashes resolve every table id to its content: callee qualified
   name, class name, interned string/name text, static-array values.  Two
   builds that intern the same entities in a different order still hash
   identical code identically.  Loose hashes drop the resolved names
   entirely (opcode + non-id immediates only): they survive callee renames
   and string edits, at the cost of more collisions — which is why they are
   only consulted after strict matching, inside a function scope. *)

let rec fold_value h (v : Hhbc.Value.t) =
  let open Hhbc.Value in
  let h = I.fnv_mix h (tag_index (tag v)) in
  match v with
  | Null -> h
  | Bool b -> I.fnv_mix h (if b then 1 else 0)
  | Int n -> I.fnv_mix h n
  | Float f -> I.fnv_float h f
  | Str s -> I.fnv_string h s
  | Vec a -> Array.fold_left fold_value (I.fnv_mix h (Array.length !a)) !a
  | Dict d -> I.fnv_mix h (Hashtbl.length d)
  | Obj _ -> h

let qualified_names repo =
  Array.init (Repo.n_funcs repo) (fun fid ->
      let f = Repo.func repo fid in
      match f.F.class_id with
      | Some cid -> (Repo.cls repo cid).Hhbc.Class_def.name ^ "::" ^ f.F.name
      | None -> f.F.name)

let strict_fold repo qual ~jump_base h (ins : I.t) =
  let mix = I.fnv_mix and str = I.fnv_string in
  let op h = mix h (I.opcode ins) in
  match ins with
  | I.LitStr sid -> str (op h) (Repo.string repo sid)
  | I.LitArr aid ->
    Array.fold_left fold_value (op h) (Repo.static_array repo aid)
  | I.Call (fid, n) -> mix (str (op h) qual.(fid)) n
  | I.CallMethod (nid, n) -> mix (str (op h) (Repo.name repo nid)) n
  | I.New (cid, n) -> mix (str (op h) (Repo.cls repo cid).Hhbc.Class_def.name) n
  | I.GetProp nid | I.SetProp nid -> str (op h) (Repo.name repo nid)
  | I.InstanceOf cid -> str (op h) (Repo.cls repo cid).Hhbc.Class_def.name
  | _ -> I.fnv_fold ~jump_base h ins (* id-free constructors *)

let loose_fold ~jump_base h (ins : I.t) =
  let mix = I.fnv_mix in
  let h = mix h (I.opcode ins) in
  match ins with
  | I.LitStr _ | I.LitArr _ | I.GetProp _ | I.SetProp _ | I.InstanceOf _ -> h
  | I.Call (_, n) | I.CallMethod (_, n) | I.New (_, n) -> mix h n
  | I.LitInt n -> mix h n
  | I.LitFloat f -> I.fnv_float h f
  | I.LitBool b -> mix h (if b then 1 else 0)
  | I.LoadLoc l | I.StoreLoc l -> mix h l
  | I.BinOp op -> mix h (I.binop_index op)
  | I.UnOp op -> mix h (match op with I.Neg -> 0 | I.Not -> 1 | I.BitNot -> 2)
  | I.Jmp t | I.JmpZ t | I.JmpNZ t -> mix h (t - jump_base)
  | I.NewVec n | I.NewDict n -> mix h n
  | I.Cast tg -> mix h (Hhbc.Value.tag_index tg)
  | I.Nop | I.LitNull | I.Pop | I.Dup | I.GetThis | I.VecGet | I.VecSet
  | I.VecPush | I.VecLen | I.DictGet | I.DictSet | I.DictHas | I.Print | I.Ret ->
    h

(* --- the match table ("shape") embedded in every package -------------- *)

type func_sig = {
  sg_name : string;  (** qualified: ["Class::method"] or the bare name *)
  sg_strict : int;  (** id-free strict hash of the whole body + arity shape *)
  sg_loose : int;
  sg_body_len : int;
  sg_block_starts : int array;  (** first pc of each block (site mapping) *)
  sg_block_lens : int array;
  sg_block_strict : int array;
  sg_block_loose : int array;
  sg_unit : int;  (** owning unit id in the profiled build *)
}

type shape = {
  sh_funcs : func_sig array;  (** indexed by the profiled build's fid *)
  sh_class_names : string array;
  sh_names : string array;
  sh_unit_paths : string array;
}

let func_sig_of repo qual (f : F.t) =
  let blocks = F.basic_blocks f in
  let strict_of ~fold =
    let h = ref I.fnv_basis in
    h := I.fnv_mix !h f.F.n_params;
    h := I.fnv_mix !h f.F.n_locals;
    h := I.fnv_mix !h (Array.length f.F.body);
    Array.iter (fun ins -> h := fold ~jump_base:0 !h ins) f.F.body;
    !h land max_int
  in
  let block_hash_of ~fold (blk : F.block) =
    let h = ref (I.fnv_mix I.fnv_basis blk.F.len) in
    for pc = blk.F.start to blk.F.start + blk.F.len - 1 do
      h := fold ~jump_base:blk.F.start !h f.F.body.(pc)
    done;
    !h land max_int
  in
  let strict = strict_fold repo qual in
  {
    sg_name = qual.(f.F.id);
    sg_strict = strict_of ~fold:strict;
    sg_loose = strict_of ~fold:loose_fold;
    sg_body_len = Array.length f.F.body;
    sg_block_starts = Array.map (fun b -> b.F.start) blocks;
    sg_block_lens = Array.map (fun b -> b.F.len) blocks;
    sg_block_strict = Array.map (block_hash_of ~fold:strict) blocks;
    sg_block_loose = Array.map (block_hash_of ~fold:loose_fold) blocks;
    sg_unit = f.F.unit_id;
  }

let shape_of_repo repo =
  let qual = qualified_names repo in
  {
    sh_funcs = Array.init (Repo.n_funcs repo) (fun fid -> func_sig_of repo qual (Repo.func repo fid));
    sh_class_names =
      Array.init (Repo.n_classes repo) (fun cid -> (Repo.cls repo cid).Hhbc.Class_def.name);
    sh_names = Array.init (Repo.n_names repo) (fun nid -> Repo.name repo nid);
    sh_unit_paths =
      Array.init (Repo.n_units repo) (fun uid -> (Repo.unit_of repo uid).Hhbc.Unit_def.path);
  }

let write_shape w (s : shape) =
  W.array w (fun n -> W.string w n) s.sh_class_names;
  W.array w (fun n -> W.string w n) s.sh_names;
  W.array w (fun p -> W.string w p) s.sh_unit_paths;
  W.array w
    (fun fs ->
      W.string w fs.sg_name;
      W.varint w fs.sg_strict;
      W.varint w fs.sg_loose;
      W.varint w fs.sg_body_len;
      W.array w (fun v -> W.varint w v) fs.sg_block_starts;
      W.array w (fun v -> W.varint w v) fs.sg_block_lens;
      W.array w (fun v -> W.varint w v) fs.sg_block_strict;
      W.array w (fun v -> W.varint w v) fs.sg_block_loose;
      W.varint w fs.sg_unit)
    s.sh_funcs

let read_shape r =
  let sh_class_names = Rd.array r (fun r -> Rd.string r) in
  let sh_names = Rd.array r (fun r -> Rd.string r) in
  let sh_unit_paths = Rd.array r (fun r -> Rd.string r) in
  let sh_funcs =
    Rd.array r (fun r ->
        let sg_name = Rd.string r in
        let sg_strict = Rd.varint r in
        let sg_loose = Rd.varint r in
        let sg_body_len = Rd.varint r in
        let sg_block_starts = Rd.array r (fun r -> Rd.varint r) in
        let sg_block_lens = Rd.array r (fun r -> Rd.varint r) in
        let sg_block_strict = Rd.array r (fun r -> Rd.varint r) in
        let sg_block_loose = Rd.array r (fun r -> Rd.varint r) in
        let sg_unit = Rd.varint r in
        if
          Array.length sg_block_strict <> Array.length sg_block_starts
          || Array.length sg_block_loose <> Array.length sg_block_starts
          || Array.length sg_block_lens <> Array.length sg_block_starts
        then raise (Js_util.Binio.Corrupt "match table: ragged block hash vectors");
        {
          sg_name;
          sg_strict;
          sg_loose;
          sg_body_len;
          sg_block_starts;
          sg_block_lens;
          sg_block_strict;
          sg_block_loose;
          sg_unit;
        })
  in
  { sh_funcs; sh_class_names; sh_names; sh_unit_paths }

(* --- lenient counter decoding ----------------------------------------- *)

(* Mirrors {!Counters.serialize}'s seven sections with *no* repo validation:
   the ids refer to the profiled build, which the consumer does not have.
   Every id is range-checked against the embedded shape during transfer
   instead. *)
type raw_counters = {
  rc_blocks : (int * int array) list;
  rc_arcs : (int * (int * int * int) list) list;
  rc_sites : ((int * int) * (int * int) list) list;
  rc_entries : (int * int) list;
  rc_cg : (int * int * int) list;
  rc_props : (int * int * int) list;
  rc_units : int list;
}

let read_raw_counters r =
  let rc_blocks =
    Rd.list r (fun r ->
        let fid = Rd.varint r in
        (fid, Rd.array r (fun r -> Rd.varint r)))
  in
  let rc_arcs =
    Rd.list r (fun r ->
        let fid = Rd.varint r in
        ( fid,
          Rd.list r (fun r ->
              let s = Rd.varint r in
              let d = Rd.varint r in
              let c = Rd.varint r in
              (s, d, c)) ))
  in
  let rc_sites =
    Rd.list r (fun r ->
        let fid = Rd.varint r in
        let site = Rd.varint r in
        ( (fid, site),
          Rd.list r (fun r ->
              let callee = Rd.varint r in
              let c = Rd.varint r in
              (callee, c)) ))
  in
  let rc_entries =
    Rd.list r (fun r ->
        let fid = Rd.varint r in
        let e = Rd.varint r in
        (fid, e))
  in
  let rc_cg =
    Rd.list r (fun r ->
        let a = Rd.varint r in
        let b = Rd.varint r in
        let c = Rd.varint r in
        (a, b, c))
  in
  let rc_props =
    Rd.list r (fun r ->
        let cid = Rd.varint r in
        let nid = Rd.varint r in
        let c = Rd.varint r in
        (cid, nid, c))
  in
  let rc_units = Rd.list r (fun r -> Rd.varint r) in
  { rc_blocks; rc_arcs; rc_sites; rc_entries; rc_cg; rc_props; rc_units }

(* --- matching ---------------------------------------------------------- *)

type stats = {
  funcs_total : int;  (** functions in the stale build *)
  funcs_matched : int;
  funcs_by_name : int;
  funcs_by_strict_hash : int;  (** rename detections *)
  funcs_by_loose_hash : int;
  blocks_total : int;  (** blocks of profiled old functions *)
  blocks_matched : int;
  counters_total : int;  (** block-counter mass in the stale profile *)
  counters_transferred : int;  (** mass that landed on the live repo *)
  arcs_dropped : int;  (** unmatched endpoint / no CFG edge / infeasible *)
  sites_dropped : int;
  props_dropped : int;
}

(* Quality knob for the salvage threshold: the fraction of profiled counter
   mass that survived transfer (clamped; entry-ratio rescaling can
   overshoot marginally). *)
let quality st =
  if st.counters_total = 0 then if st.funcs_matched > 0 then 1.0 else 0.0
  else min 1.0 (float_of_int st.counters_transferred /. float_of_int st.counters_total)

let matched_fraction st =
  if st.funcs_total = 0 then 0.0
  else float_of_int st.funcs_matched /. float_of_int st.funcs_total

type transfer = {
  counters : Counters.t;
  fid_map : int option array;  (** old fid -> live fid *)
  strict_match : bool array;  (** old fid: body identical (strict hash) *)
  unit_map : int option array;  (** old uid -> live uid (by path) *)
  func_order : int array -> int array;  (** remap an old placement order *)
  preload_units : int array -> int array;  (** remap an old preload list *)
  stats : stats;
}

(* Pair two same-hash populations in positional order: [olds] and [news]
   ascending; the k-th unmatched old takes the k-th unmatched new.  Within a
   scope (name group, or blocks of one function pair) this is the
   positional tie-break that keeps identical twins (old A, old B) aligned
   with (new A, new B) instead of crossing. *)
let pair_in_order ~key ~olds ~news ~old_done ~new_done ~assign =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if not (new_done n) then
        let k = key `New n in
        match Hashtbl.find_opt groups k with
        | Some q -> Queue.add n q
        | None ->
          let q = Queue.create () in
          Queue.add n q;
          Hashtbl.add groups k q)
    news;
  List.iter
    (fun o ->
      if not (old_done o) then
        match Hashtbl.find_opt groups (key `Old o) with
        | None -> ()
        | Some q ->
          let rec take () =
            if not (Queue.is_empty q) then begin
              let n = Queue.pop q in
              if new_done n then take () else assign o n
            end
          in
          take ())
    olds

let match_funcs repo (shape : shape) =
  let n_old = Array.length shape.sh_funcs in
  let n_new = Repo.n_funcs repo in
  let qual = qualified_names repo in
  let new_sigs = Array.init n_new (fun fid -> func_sig_of repo qual (Repo.func repo fid)) in
  let fid_map = Array.make n_old None in
  let new_taken = Array.make n_new false in
  let by = ref (0, 0, 0) in
  let assign ~pass o n =
    fid_map.(o) <- Some n;
    new_taken.(n) <- true;
    let a, b, c = !by in
    by := (match pass with `Name -> (a + 1, b, c) | `Strict -> (a, b + 1, c) | `Loose -> (a, b, c + 1))
  in
  let olds = List.init n_old (fun i -> i) in
  let news = List.init n_new (fun i -> i) in
  let old_done o = fid_map.(o) <> None in
  let new_done = Array.get new_taken in
  (* pass 1a: same name AND same strict hash (identical twins stay aligned
     because pairing is positional within the hash group) *)
  pair_in_order
    ~key:(fun side i ->
      match side with
      | `Old -> (shape.sh_funcs.(i).sg_name, shape.sh_funcs.(i).sg_strict)
      | `New -> (new_sigs.(i).sg_name, new_sigs.(i).sg_strict))
    ~olds ~news ~old_done ~new_done
    ~assign:(assign ~pass:`Name);
  (* pass 1b: same name, body edited *)
  pair_in_order
    ~key:(fun side i ->
      match side with
      | `Old -> shape.sh_funcs.(i).sg_name
      | `New -> new_sigs.(i).sg_name)
    ~olds ~news ~old_done ~new_done
    ~assign:(assign ~pass:`Name);
  (* pass 2: renamed but byte-identical body (strict hash) *)
  pair_in_order
    ~key:(fun side i ->
      match side with
      | `Old -> shape.sh_funcs.(i).sg_strict
      | `New -> new_sigs.(i).sg_strict)
    ~olds ~news ~old_done ~new_done
    ~assign:(assign ~pass:`Strict);
  (* pass 3: renamed + id drift (loose hash) *)
  pair_in_order
    ~key:(fun side i ->
      match side with
      | `Old -> shape.sh_funcs.(i).sg_loose
      | `New -> new_sigs.(i).sg_loose)
    ~olds ~news ~old_done ~new_done
    ~assign:(assign ~pass:`Loose);
  let by_name, by_strict, by_loose = !by in
  (fid_map, new_sigs, by_name, by_strict, by_loose)

(* Blocks of one matched function pair; returns old bb -> new bb (or -1). *)
let match_blocks (old_sig : func_sig) (new_sig : func_sig) =
  let n_old = Array.length old_sig.sg_block_strict in
  let n_new = Array.length new_sig.sg_block_strict in
  let map = Array.make n_old (-1) in
  let taken = Array.make n_new false in
  let olds = List.init n_old (fun i -> i) in
  let news = List.init n_new (fun i -> i) in
  let old_done o = map.(o) >= 0 in
  let new_done = Array.get taken in
  let assign o n =
    map.(o) <- n;
    taken.(n) <- true
  in
  pair_in_order
    ~key:(fun side i ->
      match side with
      | `Old -> old_sig.sg_block_strict.(i)
      | `New -> new_sig.sg_block_strict.(i))
    ~olds ~news ~old_done ~new_done ~assign;
  pair_in_order
    ~key:(fun side i ->
      match side with
      | `Old -> old_sig.sg_block_loose.(i)
      | `New -> new_sig.sg_block_loose.(i))
    ~olds ~news ~old_done ~new_done ~assign;
  map

let transfer repo (shape : shape) (raw : raw_counters) =
  let n_old = Array.length shape.sh_funcs in
  let n_new = Repo.n_funcs repo in
  let fid_map, new_sigs, by_name, by_strict, by_loose = match_funcs repo shape in
  let strict_match =
    Array.init n_old (fun o ->
        match fid_map.(o) with
        | Some n -> shape.sh_funcs.(o).sg_strict = new_sigs.(n).sg_strict
        | None -> false)
  in
  let counters = Counters.create repo in
  let old_ok fid = fid >= 0 && fid < n_old in
  let mapped fid = if old_ok fid then fid_map.(fid) else None in
  (* Feasibility gates, mirroring Package_check: only consulted for
     converged analyses of verifier-clean bodies, so an honest transfer is
     never over-pruned — but a transferred count can never land on a
     dataflow-dead block (P321) or infeasible edge (P320). *)
  let dfa = Array.make n_new `Todo in
  let dfa_of nfid =
    match dfa.(nfid) with
    | `Some s -> Some s
    | `None -> None
    | `Todo ->
      let f = Repo.func repo nfid in
      let v =
        if Js_analysis.Diag.errors (Js_analysis.Verify.check_func repo f) <> [] then `None
        else
          let s = Js_analysis.Dataflow.analyze repo f in
          if s.Js_analysis.Dataflow.converged then `Some s else `None
      in
      dfa.(nfid) <- v;
      (match v with `Some s -> Some s | `None -> None)
  in
  let new_blocks = Hashtbl.create 64 in
  let blocks_of nfid =
    match Hashtbl.find_opt new_blocks nfid with
    | Some b -> b
    | None ->
      let b = F.basic_blocks (Repo.func repo nfid) in
      Hashtbl.add new_blocks nfid b;
      b
  in
  let block_maps = Hashtbl.create 64 in
  let block_map_of ofid nfid =
    match Hashtbl.find_opt block_maps ofid with
    | Some m -> m
    | None ->
      let m = match_blocks shape.sh_funcs.(ofid) new_sigs.(nfid) in
      Hashtbl.add block_maps ofid m;
      m
  in
  let entries_of = Hashtbl.create 64 in
  List.iter (fun (fid, e) -> Hashtbl.replace entries_of fid e) raw.rc_entries;
  let blocks_total = ref 0 and blocks_matched = ref 0 in
  let mass_in = ref 0 and mass_out = ref 0 in
  let arcs_dropped = ref 0 and sites_dropped = ref 0 and props_dropped = ref 0 in
  (* Per-function entry-ratio scale: for pairs whose bodies changed (not a
     strict match), the transferred entry-block count can disagree with the
     (exact) transferred entry counter.  When the new entry block has no
     predecessors it must execute exactly once per entry, so all
     transferred block/arc counts of the function are rescaled by
     entries/c0.  Strict-identical pairs skip this: their counts are
     already exact, which keeps a zero-churn transfer byte-identical. *)
  let scale_of = Hashtbl.create 16 in
  let scale ofid c =
    match Hashtbl.find_opt scale_of ofid with
    | None -> c
    | Some r -> int_of_float (Float.round (float_of_int c *. r))
  in
  (* blocks (and the scale factors, needed before arcs) *)
  let transferred_blocks = ref [] in
  List.iter
    (fun (ofid, counts) ->
      if old_ok ofid && Array.length counts = Array.length shape.sh_funcs.(ofid).sg_block_strict
      then begin
        blocks_total := !blocks_total + Array.length counts;
        Array.iter (fun c -> mass_in := !mass_in + c) counts;
        match mapped ofid with
        | None -> ()
        | Some nfid ->
          let bmap = block_map_of ofid nfid in
          let n_nb = Array.length (blocks_of nfid) in
          let arr = Array.make n_nb 0 in
          let reach =
            match dfa_of nfid with
            | Some s -> Some s.Js_analysis.Dataflow.reach
            | None -> None
          in
          Array.iteri
            (fun ob c ->
              let nb = bmap.(ob) in
              if nb >= 0 then begin
                incr blocks_matched;
                let live = match reach with Some r -> r.(nb) | None -> true in
                if live then arr.(nb) <- arr.(nb) + c
              end)
            counts;
          if not strict_match.(ofid) then begin
            match Hashtbl.find_opt entries_of ofid with
            | Some e when e > 0 ->
              let entry_has_preds =
                Array.exists (fun (b : F.block) -> List.mem 0 b.F.succs) (blocks_of nfid)
              in
              if (not entry_has_preds) && n_nb > 0 then begin
                let c0 = arr.(0) in
                if c0 = 0 then arr.(0) <- e
                else if c0 <> e then begin
                  let r = float_of_int e /. float_of_int c0 in
                  Hashtbl.replace scale_of ofid r;
                  Array.iteri
                    (fun i c -> arr.(i) <- int_of_float (Float.round (float_of_int c *. r)))
                    arr
                end
              end
            | _ -> ()
          end;
          Array.iter (fun c -> mass_out := !mass_out + c) arr;
          transferred_blocks := (nfid, arr) :: !transferred_blocks
      end)
    raw.rc_blocks;
  List.iter (fun (nfid, arr) -> Counters.import_block_counts counters nfid arr) !transferred_blocks;
  (* arcs: both endpoints matched, still a CFG edge, still feasible *)
  List.iter
    (fun (ofid, arcs) ->
      match mapped ofid with
      | None -> List.iter (fun _ -> incr arcs_dropped) arcs
      | Some nfid ->
        let bmap = block_map_of ofid nfid in
        let nb = blocks_of nfid in
        let n_ob = Array.length bmap in
        List.iter
          (fun (s, d, c) ->
            let ok =
              s >= 0 && s < n_ob && d >= 0 && d < n_ob
              && bmap.(s) >= 0
              && bmap.(d) >= 0
              && List.mem bmap.(d) nb.(bmap.(s)).F.succs
              &&
              match dfa_of nfid with
              | Some dfs -> Js_analysis.Dataflow.feasible_edge dfs ~src:bmap.(s) ~dst:bmap.(d)
              | None -> true
            in
            if ok then Counters.import_arc counters nfid ~src:bmap.(s) ~dst:bmap.(d) (scale ofid c)
            else incr arcs_dropped)
          arcs)
    raw.rc_arcs;
  (* call sites: follow the containing block, keep the intra-block offset,
     and require the landing pc to address a call instruction (P304) *)
  List.iter
    (fun ((ofid, site), targets) ->
      let drop () = incr sites_dropped in
      match mapped ofid with
      | None -> drop ()
      | Some nfid ->
        let osig = shape.sh_funcs.(ofid) in
        if site < 0 || site >= osig.sg_body_len || Array.length osig.sg_block_starts = 0 then
          drop ()
        else begin
          (* binary-search-free: linear scan over block starts (bodies are
             small; the seeder-side shape is trusted to be sorted) *)
          let ob = ref 0 in
          Array.iteri (fun i st -> if st <= site then ob := i) osig.sg_block_starts;
          let bmap = block_map_of ofid nfid in
          let nbid = if !ob < Array.length bmap then bmap.(!ob) else -1 in
          if nbid < 0 then drop ()
          else begin
            let nb = (blocks_of nfid).(nbid) in
            let delta = site - osig.sg_block_starts.(!ob) in
            let npc = nb.F.start + delta in
            let body = (Repo.func repo nfid).F.body in
            if delta >= nb.F.len || npc >= Array.length body then drop ()
            else
              match body.(npc) with
              | I.Call _ | I.CallMethod _ | I.New _ ->
                let any = ref false in
                List.iter
                  (fun (callee, c) ->
                    match mapped callee with
                    | Some ncallee ->
                      any := true;
                      Counters.import_call counters ~caller:nfid ~site:npc ~callee:ncallee c
                    | None -> ())
                  targets;
                if not !any then drop ()
              | _ -> drop ()
          end
        end)
    raw.rc_sites;
  (* entry + call-graph counters follow the function map directly *)
  List.iter
    (fun (ofid, e) ->
      match mapped ofid with
      | Some nfid -> Counters.import_entries counters nfid e
      | None -> ())
    raw.rc_entries;
  List.iter
    (fun (a, b, c) ->
      match (mapped a, mapped b) with
      | Some na, Some nb -> Counters.import_cg counters ~caller:na ~callee:nb c
      | _ -> ())
    raw.rc_cg;
  (* property counters: resolve class and property names through the shape *)
  let class_by_name = Hashtbl.create 16 in
  for cid = 0 to Repo.n_classes repo - 1 do
    let nm = (Repo.cls repo cid).Hhbc.Class_def.name in
    if not (Hashtbl.mem class_by_name nm) then Hashtbl.add class_by_name nm cid
  done;
  List.iter
    (fun (cid, nid, c) ->
      let resolved =
        if cid >= 0 && cid < Array.length shape.sh_class_names && nid >= 0
           && nid < Array.length shape.sh_names
        then
          match Hashtbl.find_opt class_by_name shape.sh_class_names.(cid) with
          | Some ncid -> (
            match Repo.find_name repo shape.sh_names.(nid) with
            | Some nnid -> Some (ncid, nnid)
            | None -> None)
          | None -> None
        else None
      in
      match resolved with
      | Some (ncid, nnid) -> Counters.import_prop counters ncid nnid c
      | None -> incr props_dropped)
    raw.rc_props;
  (* touched units: map by path, preserving first-touch order *)
  let unit_by_path = Hashtbl.create 16 in
  for uid = 0 to Repo.n_units repo - 1 do
    let p = (Repo.unit_of repo uid).Hhbc.Unit_def.path in
    if not (Hashtbl.mem unit_by_path p) then Hashtbl.add unit_by_path p uid
  done;
  let unit_map =
    Array.init (Array.length shape.sh_unit_paths) (fun uid ->
        Hashtbl.find_opt unit_by_path shape.sh_unit_paths.(uid))
  in
  let map_unit uid =
    if uid >= 0 && uid < Array.length unit_map then unit_map.(uid) else None
  in
  List.iter
    (fun uid ->
      match map_unit uid with
      | Some nuid -> Counters.record_unit_load counters nuid
      | None -> ())
    raw.rc_units;
  let remap_dedup ~f arr =
    let seen = Hashtbl.create 32 in
    let out = ref [] in
    Array.iter
      (fun x ->
        match f x with
        | Some y when not (Hashtbl.mem seen y) ->
          Hashtbl.add seen y ();
          out := y :: !out
        | _ -> ())
      arr;
    Array.of_list (List.rev !out)
  in
  let funcs_matched = by_name + by_strict + by_loose in
  let stats =
    {
      funcs_total = n_old;
      funcs_matched;
      funcs_by_name = by_name;
      funcs_by_strict_hash = by_strict;
      funcs_by_loose_hash = by_loose;
      blocks_total = !blocks_total;
      blocks_matched = !blocks_matched;
      counters_total = !mass_in;
      counters_transferred = !mass_out;
      arcs_dropped = !arcs_dropped;
      sites_dropped = !sites_dropped;
      props_dropped = !props_dropped;
    }
  in
  {
    counters;
    fid_map;
    strict_match;
    unit_map;
    func_order = remap_dedup ~f:mapped;
    preload_units = remap_dedup ~f:map_unit;
    stats;
  }

let pp_stats fmt st =
  Format.fprintf fmt
    "match[funcs %d/%d (name %d, hash %d, loose %d) blocks %d/%d mass %d/%d dropped a%d s%d p%d]"
    st.funcs_matched st.funcs_total st.funcs_by_name st.funcs_by_strict_hash
    st.funcs_by_loose_hash st.blocks_matched st.blocks_total st.counters_transferred
    st.counters_total st.arcs_dropped st.sites_dropped st.props_dropped
