lib/interp/engine.ml: Array Buffer Format Hashtbl Hhbc Mh_runtime Option Probes String
