(** Execution tiers and their macro cost model.

    HHVM executes each piece of code in one of four ways (paper §II-A):
    interpretation, live (tracelet) translations, profiling translations, and
    optimized (PGO region) translations.  The constants here convert
    bytecode-level work into simulated cycles and machine-code bytes; they
    are calibrated so the fleet-level figures (1, 2, 4) land in the paper's
    regime (e.g. ~500 MB of JITed code, ~90% of peak at point "C").  See
    DESIGN.md §4. *)

type mode = Interp | Live | Profiling | Optimized

val all_modes : mode list
val mode_to_string : mode -> string

(** Simulated CPU cycles to execute one bytecode instruction under a mode.
    The Interp/Optimized ratio (~10x) matches dynamic-language VM folklore
    and drives the warmup latency curves. *)
val cycles_per_instr : mode -> float

(** Machine-code bytes emitted per bytecode byte.  [Interp] emits nothing.
    Profiling translations are the largest (counters, no optimization);
    optimized code is denser. *)
val code_expansion : mode -> float

(** JIT compilation cost, in cycles per bytecode byte, of producing a
    translation.  Optimized (region) compilation is by far the heaviest —
    this is the work Jump-Start moves before request serving and
    parallelizes across cores. *)
val compile_cycles_per_byte : mode -> float

(** Simulated clock of the evaluation servers (1.8 GHz Xeon D-1581). *)
val clock_hz : float

(** Fraction of peak performance achieved when all optimized (but not yet
    all live) code is in place — the paper's "about 90%" at point "C". *)
val optimized_peak_fraction : float
