bin/minihack_run.ml: Arg Cmd Cmdliner Format Fun Hhbc Interp Jit_profile List Mh_runtime Minihack Printf Term
