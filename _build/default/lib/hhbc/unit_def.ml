type t = {
  id : int;
  path : string;
  funcs : Instr.fid array;
  classes : Instr.cid array;
  main : Instr.fid option;
  load_cost_bytes : int;
}

let pp fmt t =
  Format.fprintf fmt "unit %s (u%d): %d funcs, %d classes" t.path t.id (Array.length t.funcs)
    (Array.length t.classes)
