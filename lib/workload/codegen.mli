(** Generates the synthetic application as real minihack source (AST),
    compiled through the production compiler into a repo.

    Structure (see DESIGN.md):
    - one base class with [n_props] properties and [n_methods] virtual
      methods; [n_classes] subclasses override a third of the methods and
      initialize properties in their constructors;
    - worker functions organized in layers (a call DAG with controlled
      fan-out, so per-request work is bounded and the execution profile is
      flat);
    - endpoint functions that construct a receiver object whose class
      depends on a selector argument (one dominant class per endpoint ->
      realistic polymorphic call sites with dominant targets), then drive
      workers in a loop;
    - property accesses skewed towards a small hot set whose declared
      positions are deliberately scattered, so §V-C property reordering has
      locality to recover. *)

type app = {
  spec : App_spec.t;
  repo : Hhbc.Repo.t;
  endpoint_fids : int array;  (** endpoint index -> function id *)
  endpoint_partition : int array;  (** endpoint index -> semantic partition *)
  base_class : Hhbc.Instr.cid;
  hot_props : int array;  (** declared indices of the hot property set *)
}

(** [generate spec] builds and validates the app.
    @raise Failure if the generated program fails repo validation (a
    generator bug, not an input condition). *)
val generate : App_spec.t -> app

(** [build_ast spec] — the program before compilation, plus the hot-property
    indices.  Exposed so {!Churn} can mutate the source of a build and
    recompile it into a drifted app. *)
val build_ast : App_spec.t -> Minihack.Ast.program * int array

(** [app_of_program spec ~hot program] — compile + validate an (optionally
    mutated) program exactly as {!generate} does.
    @raise Failure as {!generate}; churn must keep the app well-formed. *)
val app_of_program : App_spec.t -> hot:int array -> Minihack.Ast.program -> app

(** The generated program as minihack source text (for inspection and for
    the examples). *)
val source_of : App_spec.t -> string
