type node = { id : int; size : int; samples : float }
type call_arc = { caller : int; callee : int; weight : float }

(* Clusters are singly-linked lists of node ids in placement order, with the
   usual union-find-ish representative tracking. *)
type cluster = {
  repr : int;
  mutable members : int list;  (** reversed placement order *)
  mutable csize : int;
  mutable csamples : float;
  mutable alive : bool;
}

let order ~nodes ~arcs ?(max_cluster_size = 2 * 1024 * 1024) ?(min_arc_ratio = 0.005) () =
  let n = Array.length nodes in
  Array.iteri (fun i nd -> if nd.id <> i then invalid_arg "C3.order: nodes must be indexed by id") nodes;
  let clusters =
    Array.init n (fun i ->
        { repr = i; members = [ i ]; csize = nodes.(i).size; csamples = nodes.(i).samples; alive = true })
  in
  let cluster_of = Array.init n (fun i -> i) in
  (* strongest predecessor arc per callee *)
  let best_pred = Array.make n None in
  Array.iter
    (fun a ->
      if a.caller <> a.callee && a.weight > 0. then
        match best_pred.(a.callee) with
        | Some prev when prev.weight >= a.weight -> ()
        | _ -> best_pred.(a.callee) <- Some a)
    arcs;
  (* process by decreasing hotness (samples), ties by id for determinism *)
  let by_hotness = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare nodes.(b).samples nodes.(a).samples in
      if c <> 0 then c else compare a b)
    by_hotness;
  Array.iter
    (fun callee ->
      match best_pred.(callee) with
      | None -> ()
      | Some a ->
        let cu = clusters.(cluster_of.(a.caller)) and cv = clusters.(cluster_of.(callee)) in
        let cold_arc = a.weight < min_arc_ratio *. nodes.(callee).samples in
        if cu.repr <> cv.repr && (not cold_arc) && cu.csize + cv.csize <= max_cluster_size then begin
          (* append callee's cluster after caller's *)
          cu.members <- cv.members @ cu.members;
          cu.csize <- cu.csize + cv.csize;
          cu.csamples <- cu.csamples +. cv.csamples;
          cv.alive <- false;
          List.iter (fun m -> cluster_of.(m) <- cu.repr) cv.members
        end)
    by_hotness;
  let alive = Array.to_list clusters |> List.filter (fun c -> c.alive) in
  let density c = if c.csize = 0 then 0. else c.csamples /. float_of_int c.csize in
  let sorted =
    List.sort
      (fun a b ->
        let c = compare (density b) (density a) in
        if c <> 0 then c else compare a.repr b.repr)
      alive
  in
  Array.of_list (List.concat_map (fun c -> List.rev c.members) sorted)

let weighted_call_distance ~nodes ~arcs order =
  let n = Array.length nodes in
  if Array.length order <> n then invalid_arg "C3.weighted_call_distance: bad order";
  let start = Array.make n 0 in
  let off = ref 0 in
  Array.iter
    (fun id ->
      start.(id) <- !off;
      off := !off + nodes.(id).size)
    order;
  let total_w = ref 0. and acc = ref 0. in
  Array.iter
    (fun a ->
      if a.caller <> a.callee then begin
        let d = abs (start.(a.caller) - start.(a.callee)) in
        acc := !acc +. (a.weight *. float_of_int d);
        total_w := !total_w +. a.weight
      end)
    arcs;
  if !total_w = 0. then 0. else !acc /. !total_w
