(* Synthetic workload generator tests. *)

module CG = Workload.Codegen
module Req = Workload.Request
module MA = Workload.Macro_app

let tiny_app = lazy (CG.generate Workload.App_spec.tiny)

let test_app_valid_and_runs () =
  let app = Lazy.force tiny_app in
  Alcotest.(check bool) "repo validates" true (Hhbc.Repo.validate app.CG.repo = Ok ());
  let layouts = Mh_runtime.Class_layout.build app.CG.repo ~reorder:false ~hotness:(fun _ _ -> 0) in
  let engine = Interp.Engine.create app.CG.repo (Mh_runtime.Heap.create app.CG.repo layouts) in
  let rng = Js_util.Rng.create 5 in
  let mix = Req.uniform_mix app in
  for _ = 1 to 50 do
    (* every request must complete without runtime errors *)
    ignore (Req.invoke engine app (Req.sample rng mix))
  done;
  Alcotest.(check bool) "work happened" true (Interp.Engine.steps engine > 1000)

let test_app_deterministic () =
  let a = CG.generate Workload.App_spec.tiny in
  let b = CG.generate Workload.App_spec.tiny in
  Alcotest.(check int) "same func count" (Hhbc.Repo.n_funcs a.CG.repo) (Hhbc.Repo.n_funcs b.CG.repo);
  Alcotest.(check string) "identical source" (CG.source_of Workload.App_spec.tiny)
    (CG.source_of Workload.App_spec.tiny)

let test_app_structure () =
  let app = Lazy.force tiny_app in
  let spec = Workload.App_spec.tiny in
  Alcotest.(check int) "endpoints" spec.Workload.App_spec.n_endpoints
    (Array.length app.CG.endpoint_fids);
  Alcotest.(check int) "classes (subs + base)" (spec.Workload.App_spec.n_classes + 1)
    (Hhbc.Repo.n_classes app.CG.repo);
  (* partitions cover 0..n_partitions-1 *)
  Array.iter
    (fun p ->
      Alcotest.(check bool) "partition in range" true
        (p >= 0 && p < spec.Workload.App_spec.n_partitions))
    app.CG.endpoint_partition

let test_request_results_deterministic () =
  let app = Lazy.force tiny_app in
  let layouts = Mh_runtime.Class_layout.build app.CG.repo ~reorder:false ~hotness:(fun _ _ -> 0) in
  let run () =
    let engine = Interp.Engine.create app.CG.repo (Mh_runtime.Heap.create app.CG.repo layouts) in
    let rng = Js_util.Rng.create 9 in
    let mix = Req.mix app ~region:0 ~bucket:0 in
    List.init 20 (fun _ -> Req.invoke engine app (Req.sample rng mix))
  in
  Alcotest.(check bool) "same results" true (run () = run ())

let test_mix_is_distribution () =
  let app = Lazy.force tiny_app in
  let mix = Req.mix app ~region:1 ~bucket:2 in
  Alcotest.(check (float 1e-6)) "self similarity" 1. (Req.similarity mix mix)

let test_mix_bucket_affinity () =
  let app = Lazy.force tiny_app in
  (* same bucket across regions is more similar than different buckets in
     one region (semantic routing property, paper §II-C) *)
  let m_b0_r0 = Req.mix app ~region:0 ~bucket:0 in
  let m_b0_r1 = Req.mix app ~region:1 ~bucket:0 in
  let m_b1_r0 = Req.mix app ~region:0 ~bucket:1 in
  Alcotest.(check bool) "bucket dominates similarity" true
    (Req.similarity m_b0_r0 m_b0_r1 > Req.similarity m_b0_r0 m_b1_r0)

let test_mix_sampling_respects_partition () =
  let app = Lazy.force tiny_app in
  let mix = Req.mix app ~region:0 ~bucket:0 in
  let rng = Js_util.Rng.create 3 in
  let own = ref 0 and total = 2_000 in
  for _ = 1 to total do
    let r = Req.sample rng mix in
    if app.CG.endpoint_partition.(r.Req.endpoint) = 0 then incr own
  done;
  let frac = float_of_int !own /. float_of_int total in
  Alcotest.(check bool) "~85% own partition" true (frac > 0.7 && frac < 0.95)

(* --- macro app --- *)

let test_macro_generate () =
  let app = MA.generate { MA.default_params with MA.n_funcs = 5_000; core_funcs = 500 } in
  Alcotest.(check int) "func count" 5_000 (Array.length app.MA.funcs);
  Alcotest.(check bool) "sizes positive" true
    (Array.for_all (fun f -> f.MA.size > 0) app.MA.funcs);
  Alcotest.(check bool) "probabilities in range" true
    (Array.for_all (fun f -> f.MA.p_touch > 0. && f.MA.p_touch <= 1.) app.MA.funcs);
  (* instrs_per_request calibration: sum p*w matches the target *)
  let expected = Array.fold_left (fun acc f -> acc +. (f.MA.p_touch *. f.MA.weight)) 0. app.MA.funcs in
  Alcotest.(check bool) "calibrated" true
    (abs_float (expected -. app.MA.params.MA.instrs_per_request)
    < 0.01 *. app.MA.params.MA.instrs_per_request)

let test_macro_discovery_geometric () =
  let app = MA.generate { MA.default_params with MA.n_funcs = 2_000; core_funcs = 200 } in
  let rng = Js_util.Rng.create 17 in
  let disc = MA.sample_discovery app rng in
  Alcotest.(check bool) "all positive" true (Array.for_all (fun d -> d >= 1) disc);
  (* the hottest function is discovered almost immediately *)
  Alcotest.(check bool) "hot func found fast" true (disc.(0) <= 3);
  (* hot funcs discovered before the tail on average *)
  let avg a b =
    let s = ref 0. in
    for i = a to b - 1 do
      s := !s +. float_of_int (min disc.(i) 1_000_000)
    done;
    !s /. float_of_int (b - a)
  in
  Alcotest.(check bool) "core before tail" true (avg 0 200 < avg 200 2_000)

let test_macro_coverage () =
  let app = MA.generate { MA.default_params with MA.n_funcs = 2_000; core_funcs = 200 } in
  Alcotest.(check (float 1e-9)) "nothing covered" 0. (MA.coverage app ~discovered:(fun _ -> false));
  Alcotest.(check (float 1e-9)) "everything covered" 1. (MA.coverage app ~discovered:(fun _ -> true));
  let core_cov = MA.coverage app ~discovered:(fun i -> i < 200) in
  Alcotest.(check bool) "core covers most weight" true (core_cov > 0.5)

let () =
  Alcotest.run "workload"
    [ ( "codegen",
        [ Alcotest.test_case "valid and runnable" `Quick test_app_valid_and_runs;
          Alcotest.test_case "deterministic" `Quick test_app_deterministic;
          Alcotest.test_case "structure" `Quick test_app_structure;
          Alcotest.test_case "request determinism" `Quick test_request_results_deterministic
        ] );
      ( "request mix",
        [ Alcotest.test_case "distribution" `Quick test_mix_is_distribution;
          Alcotest.test_case "bucket affinity" `Quick test_mix_bucket_affinity;
          Alcotest.test_case "partition sampling" `Quick test_mix_sampling_respects_partition
        ] );
      ( "macro app",
        [ Alcotest.test_case "generation" `Quick test_macro_generate;
          Alcotest.test_case "discovery" `Quick test_macro_discovery_geometric;
          Alcotest.test_case "coverage" `Quick test_macro_coverage
        ] )
    ]
