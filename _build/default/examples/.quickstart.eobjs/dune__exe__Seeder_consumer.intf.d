examples/seeder_consumer.mli:
