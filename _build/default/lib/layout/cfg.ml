type block = { id : int; size : int; weight : float }
type arc = { src : int; dst : int; weight : float }

type t = {
  blocks : block array;
  arcs : arc array;
  entry : int;
  succ_index : arc list array;
}

let create ~blocks ~arcs ~entry =
  let n = Array.length blocks in
  Array.iteri
    (fun i b -> if b.id <> i then invalid_arg "Cfg.create: blocks must be indexed by id")
    blocks;
  if entry < 0 || entry >= n then invalid_arg "Cfg.create: entry out of range";
  Array.iter
    (fun a ->
      if a.src < 0 || a.src >= n || a.dst < 0 || a.dst >= n then
        invalid_arg "Cfg.create: arc endpoint out of range";
      if a.weight < 0. then invalid_arg "Cfg.create: negative arc weight")
    arcs;
  let succ_index = Array.make n [] in
  Array.iter (fun a -> succ_index.(a.src) <- a :: succ_index.(a.src)) arcs;
  (* reverse so succs come back in insertion order *)
  Array.iteri (fun i l -> succ_index.(i) <- List.rev l) succ_index;
  { blocks; arcs; entry; succ_index }

let blocks t = t.blocks
let arcs t = t.arcs
let entry t = t.entry
let n_blocks t = Array.length t.blocks
let total_weight t = Array.fold_left (fun acc (b : block) -> acc +. b.weight) 0. t.blocks
let succs t id = t.succ_index.(id)

let pp fmt t =
  Format.fprintf fmt "@[<v 2>cfg (%d blocks, entry %d):" (Array.length t.blocks) t.entry;
  Array.iter
    (fun b ->
      Format.fprintf fmt "@,b%d size=%d w=%.0f ->" b.id b.size b.weight;
      List.iter (fun a -> Format.fprintf fmt " b%d(%.0f)" a.dst a.weight) t.succ_index.(b.id))
    t.blocks;
  Format.fprintf fmt "@]"
