exception Error of string

type state = { tokens : Token.located array; mutable pos : int }

let error (st : state) fmt =
  let { Token.pos; token } = st.tokens.(min st.pos (Array.length st.tokens - 1)) in
  Format.kasprintf
    (fun s ->
      raise
        (Error (Printf.sprintf "line %d, col %d: %s (found '%s')" pos.line pos.col s (Token.to_string token))))
    fmt

let peek st = st.tokens.(st.pos).Token.token
let advance st = st.pos <- st.pos + 1

let eat st expected =
  if peek st = expected then advance st
  else error st "expected '%s'" (Token.to_string expected)

let eat_ident st =
  match peek st with
  | Token.IDENT name ->
    advance st;
    name
  | _ -> error st "expected identifier"

let eat_var st =
  match peek st with
  | Token.VAR name ->
    advance st;
    name
  | _ -> error st "expected variable"

(* Keywords are contextual: the lexer emits IDENT and the parser checks. *)
let is_kw st kw = match peek st with Token.IDENT k -> String.equal k kw | _ -> false

let eat_kw st kw =
  if is_kw st kw then advance st else error st "expected keyword '%s'" kw

let binop_of_token = function
  | Token.PLUS -> Some Ast.Add
  | Token.MINUS -> Some Ast.Sub
  | Token.STAR -> Some Ast.Mul
  | Token.SLASH -> Some Ast.Div
  | Token.PERCENT -> Some Ast.Mod
  | Token.DOT -> Some Ast.Concat
  | Token.LT -> Some Ast.Lt
  | Token.LE -> Some Ast.Le
  | Token.GT -> Some Ast.Gt
  | Token.GE -> Some Ast.Ge
  | Token.EQ -> Some Ast.Eq
  | Token.NE -> Some Ast.Ne
  | Token.ANDAND -> Some Ast.And
  | Token.OROR -> Some Ast.Or
  | Token.AMP -> Some Ast.BitAnd
  | Token.PIPE -> Some Ast.BitOr
  | Token.CARET -> Some Ast.BitXor
  | Token.SHL -> Some Ast.Shl
  | Token.SHR -> Some Ast.Shr
  | _ -> None

(* Higher binds tighter. *)
let precedence = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.BitOr -> 3
  | Ast.BitXor -> 4
  | Ast.BitAnd -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Add | Ast.Sub | Ast.Concat -> 9
  | Ast.Mul | Ast.Div | Ast.Mod -> 10

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  parse_binop_rhs st lhs min_prec

and parse_binop_rhs st lhs min_prec =
  (* 'instanceof' sits at comparison precedence. *)
  if is_kw st "instanceof" && 7 >= min_prec then begin
    advance st;
    let cname = eat_ident st in
    parse_binop_rhs st (Ast.InstanceOf (lhs, cname)) min_prec
  end
  else
    match binop_of_token (peek st) with
    | Some op when precedence op >= min_prec ->
      advance st;
      let rhs = parse_expr_prec st (precedence op + 1) in
      parse_binop_rhs st (Ast.Binop (op, lhs, rhs)) min_prec
    | Some _ | None -> lhs

and parse_unary st =
  match peek st with
  | Token.BANG ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | Token.MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | _ -> parse_postfix st (parse_atom st)

and parse_postfix st expr =
  match peek st with
  | Token.LBRACKET when st.tokens.(st.pos + 1).Token.token <> Token.RBRACKET ->
    (* `e[]` (empty index) is left unconsumed: it is only valid as a push
       statement and is recognized by [parse_simple_stmt]. *)
    advance st;
    let idx = parse_expr_prec st 0 in
    eat st Token.RBRACKET;
    parse_postfix st (Ast.Index (expr, idx))
  | Token.ARROW ->
    advance st;
    let name = eat_ident st in
    if peek st = Token.LPAREN then begin
      let args = parse_args st in
      parse_postfix st (Ast.MethodCall (expr, name, args))
    end
    else parse_postfix st (Ast.PropGet (expr, name))
  | _ -> expr

and parse_args st =
  eat st Token.LPAREN;
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr_prec st 0 in
      if peek st = Token.COMMA then begin
        advance st;
        go (e :: acc)
      end
      else begin
        eat st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_atom st =
  match peek st with
  | Token.INT n ->
    advance st;
    Ast.Int n
  | Token.FLOAT f ->
    advance st;
    Ast.Float f
  | Token.STRING s ->
    advance st;
    Ast.Str s
  | Token.VAR "this" ->
    advance st;
    Ast.This
  | Token.VAR v ->
    advance st;
    Ast.Var v
  | Token.LPAREN ->
    advance st;
    let e = parse_expr_prec st 0 in
    eat st Token.RPAREN;
    e
  | Token.IDENT "true" ->
    advance st;
    Ast.Bool true
  | Token.IDENT "false" ->
    advance st;
    Ast.Bool false
  | Token.IDENT "null" ->
    advance st;
    Ast.Null
  | Token.IDENT "new" ->
    advance st;
    let cname = eat_ident st in
    let args = if peek st = Token.LPAREN then parse_args st else [] in
    Ast.New (cname, args)
  | Token.IDENT "vec" ->
    advance st;
    eat st Token.LBRACKET;
    let rec go acc =
      if peek st = Token.RBRACKET then begin
        advance st;
        List.rev acc
      end
      else begin
        let e = parse_expr_prec st 0 in
        if peek st = Token.COMMA then begin
          advance st;
          go (e :: acc)
        end
        else begin
          eat st Token.RBRACKET;
          List.rev (e :: acc)
        end
      end
    in
    Ast.VecLit (go [])
  | Token.IDENT "dict" ->
    advance st;
    eat st Token.LBRACKET;
    let rec go acc =
      if peek st = Token.RBRACKET then begin
        advance st;
        List.rev acc
      end
      else begin
        let k = parse_expr_prec st 0 in
        eat st Token.FATARROW;
        let v = parse_expr_prec st 0 in
        if peek st = Token.COMMA then begin
          advance st;
          go ((k, v) :: acc)
        end
        else begin
          eat st Token.RBRACKET;
          List.rev ((k, v) :: acc)
        end
      end
    in
    Ast.DictLit (go [])
  | Token.IDENT name ->
    advance st;
    if peek st = Token.LPAREN then Ast.Call (name, parse_args st)
    else error st "unexpected identifier '%s' (functions require arguments)" name
  | _ -> error st "expected expression"

(* --- statements --- *)

let rec parse_block st =
  eat st Token.LBRACE;
  let rec go acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st =
  if is_kw st "if" then parse_if st
  else if is_kw st "while" then begin
    advance st;
    eat st Token.LPAREN;
    let cond = parse_expr_prec st 0 in
    eat st Token.RPAREN;
    Ast.While (cond, parse_block st)
  end
  else if is_kw st "for" then begin
    advance st;
    eat st Token.LPAREN;
    let init = if peek st = Token.SEMI then None else Some (parse_simple_stmt st) in
    eat st Token.SEMI;
    let cond = if peek st = Token.SEMI then None else Some (parse_expr_prec st 0) in
    eat st Token.SEMI;
    let step = if peek st = Token.RPAREN then None else Some (parse_simple_stmt st) in
    eat st Token.RPAREN;
    Ast.For (init, cond, step, parse_block st)
  end
  else if is_kw st "foreach" then begin
    advance st;
    eat st Token.LPAREN;
    let e = parse_expr_prec st 0 in
    eat_kw st "as";
    let v = eat_var st in
    eat st Token.RPAREN;
    Ast.Foreach (e, v, parse_block st)
  end
  else if is_kw st "return" then begin
    advance st;
    if peek st = Token.SEMI then begin
      advance st;
      Ast.Return None
    end
    else begin
      let e = parse_expr_prec st 0 in
      eat st Token.SEMI;
      Ast.Return (Some e)
    end
  end
  else if is_kw st "echo" then begin
    advance st;
    let e = parse_expr_prec st 0 in
    eat st Token.SEMI;
    Ast.Echo e
  end
  else if is_kw st "break" then begin
    advance st;
    eat st Token.SEMI;
    Ast.Break
  end
  else if is_kw st "continue" then begin
    advance st;
    eat st Token.SEMI;
    Ast.Continue
  end
  else begin
    let s = parse_simple_stmt st in
    eat st Token.SEMI;
    s
  end

and parse_if st =
  eat_kw st "if";
  eat st Token.LPAREN;
  let cond = parse_expr_prec st 0 in
  eat st Token.RPAREN;
  let body = parse_block st in
  let rec parse_else arms =
    if is_kw st "else" then begin
      advance st;
      if is_kw st "if" then begin
        advance st;
        eat st Token.LPAREN;
        let c = parse_expr_prec st 0 in
        eat st Token.RPAREN;
        let b = parse_block st in
        parse_else ((c, b) :: arms)
      end
      else (List.rev arms, parse_block st)
    end
    else (List.rev arms, [])
  in
  let arms, else_block = parse_else [ (cond, body) ] in
  Ast.If (arms, else_block)

(* Assignment or expression statement (no trailing ';' so 'for' headers can
   reuse it). *)
and parse_simple_stmt st =
  let start = st.pos in
  let e = parse_expr_prec st 0 in
  match peek st with
  | Token.ASSIGN -> (
    advance st;
    let rhs = parse_expr_prec st 0 in
    match e with
    | Ast.Var v -> Ast.Assign (Ast.LVar v, rhs)
    | Ast.Index (base, idx) -> Ast.Assign (Ast.LIndex (base, idx), rhs)
    | Ast.PropGet (base, p) -> Ast.Assign (Ast.LProp (base, p), rhs)
    | _ ->
      st.pos <- start;
      error st "invalid assignment target")
  | Token.LBRACKET when st.tokens.(st.pos + 1).Token.token = Token.RBRACKET ->
    (* `e[] = v` push statement: parse_postfix stopped before the empty index. *)
    advance st;
    advance st;
    eat st Token.ASSIGN;
    let rhs = parse_expr_prec st 0 in
    Ast.VecPushStmt (e, rhs)
  | _ -> Ast.Expr e

(* --- declarations --- *)

let parse_params st =
  eat st Token.LPAREN;
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let v = eat_var st in
      if peek st = Token.COMMA then begin
        advance st;
        go (v :: acc)
      end
      else begin
        eat st Token.RPAREN;
        List.rev (v :: acc)
      end
    in
    go []
  end

let parse_func st =
  eat_kw st "function";
  let fname = eat_ident st in
  let params = parse_params st in
  let body = parse_block st in
  { Ast.fname; params; body }

let parse_class st =
  eat_kw st "class";
  let cname = eat_ident st in
  let cparent = if is_kw st "extends" then begin advance st; Some (eat_ident st) end else None in
  eat st Token.LBRACE;
  let props = ref [] and methods = ref [] in
  let rec go () =
    if peek st = Token.RBRACE then advance st
    else if is_kw st "prop" then begin
      advance st;
      let pname = eat_var st in
      let pdefault =
        if peek st = Token.ASSIGN then begin
          advance st;
          Some (parse_expr_prec st 0)
        end
        else None
      in
      eat st Token.SEMI;
      props := { Ast.pname; pdefault } :: !props;
      go ()
    end
    else if is_kw st "method" then begin
      advance st;
      let fname = eat_ident st in
      let params = parse_params st in
      let body = parse_block st in
      methods := { Ast.fname; params; body } :: !methods;
      go ()
    end
    else error st "expected 'prop', 'method' or '}'"
  in
  go ();
  { Ast.cname; cparent; cprops = List.rev !props; cmethods = List.rev !methods }

let parse_program src =
  let st = { tokens = Lexer.tokenize src; pos = 0 } in
  let rec go acc =
    if peek st = Token.EOF then List.rev acc
    else if is_kw st "function" then go (Ast.DFunc (parse_func st) :: acc)
    else if is_kw st "class" then go (Ast.DClass (parse_class st) :: acc)
    else error st "expected 'function' or 'class' at top level"
  in
  go []

let parse_expr src =
  let st = { tokens = Lexer.tokenize src; pos = 0 } in
  let e = parse_expr_prec st 0 in
  if peek st <> Token.EOF then error st "trailing tokens after expression";
  e
