type prop = { prop_name : Instr.nid; default : Value.t }

type t = {
  id : Instr.cid;
  name : string;
  parent : Instr.cid option;
  props : prop array;
  methods : (Instr.nid * Instr.fid) array;
  unit_id : int;
}

let find_method t name =
  let rec scan i =
    if i >= Array.length t.methods then None
    else
      let m_name, fid = t.methods.(i) in
      if m_name = name then Some fid else scan (i + 1)
  in
  scan 0

let pp fmt t =
  Format.fprintf fmt "class %s (c%d%s): %d props, %d methods" t.name t.id
    (match t.parent with None -> "" | Some p -> Printf.sprintf " extends c%d" p)
    (Array.length t.props) (Array.length t.methods)
