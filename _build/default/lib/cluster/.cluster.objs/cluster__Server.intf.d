lib/cluster/server.mli: Js_util Workload
