let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
  sqrt (acc /. float_of_int (Array.length xs))

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let geomean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.geomean: empty";
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geomean: non-positive value";
        acc +. log x)
      0. xs
  in
  exp (acc /. float_of_int n)

module Series = struct
  type t = { mutable times : float array; mutable values : float array; mutable len : int }

  let create () = { times = Array.make 16 0.; values = Array.make 16 0.; len = 0 }

  let ensure t =
    if t.len = Array.length t.times then begin
      let grow a = Array.append a (Array.make (Array.length a) 0.) in
      t.times <- grow t.times;
      t.values <- grow t.values
    end

  let add t ~time ~value =
    if t.len > 0 && time < t.times.(t.len - 1) then
      invalid_arg "Series.add: samples must be added in time order";
    ensure t;
    t.times.(t.len) <- time;
    t.values.(t.len) <- value;
    t.len <- t.len + 1

  let length t = t.len

  let to_array t = Array.init t.len (fun i -> (t.times.(i), t.values.(i)))

  let value_at t time =
    if t.len = 0 then invalid_arg "Series.value_at: empty";
    if time <= t.times.(0) then t.values.(0)
    else if time >= t.times.(t.len - 1) then t.values.(t.len - 1)
    else begin
      (* Binary search for the sample interval containing [time]. *)
      let lo = ref 0 and hi = ref (t.len - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if t.times.(mid) <= time then lo := mid else hi := mid
      done;
      let t0 = t.times.(!lo) and t1 = t.times.(!hi) in
      let v0 = t.values.(!lo) and v1 = t.values.(!hi) in
      if t1 = t0 then v0 else v0 +. ((time -. t0) /. (t1 -. t0) *. (v1 -. v0))
    end

  let integral t ~until =
    if t.len < 2 then 0.
    else begin
      let acc = ref 0. in
      let i = ref 0 in
      while !i < t.len - 1 && t.times.(!i + 1) <= until do
        let dt = t.times.(!i + 1) -. t.times.(!i) in
        acc := !acc +. (dt *. (t.values.(!i) +. t.values.(!i + 1)) /. 2.);
        incr i
      done;
      (* Partial last trapezoid up to [until]. *)
      if !i < t.len - 1 && t.times.(!i) < until then begin
        let v_end = value_at t until in
        let dt = until -. t.times.(!i) in
        acc := !acc +. (dt *. (t.values.(!i) +. v_end) /. 2.)
      end;
      !acc
    end

  let resample t ~step ~until =
    if step <= 0. then invalid_arg "Series.resample: step must be positive";
    let n = int_of_float (Float.floor (until /. step)) + 1 in
    Array.init n (fun i ->
        let time = float_of_int i *. step in
        (time, value_at t time))

  let capacity_loss t ~peak ~until =
    if peak <= 0. || until <= 0. then invalid_arg "Series.capacity_loss";
    let served = integral t ~until in
    1. -. (served /. (peak *. until))
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~buckets =
    if hi <= lo || buckets <= 0 then invalid_arg "Histogram.create";
    { lo; hi; counts = Array.make buckets 0; total = 0 }

  let add t x =
    let b = Array.length t.counts in
    let idx =
      if x < t.lo then 0
      else if x >= t.hi then b - 1
      else int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int b)
    in
    t.counts.(min idx (b - 1)) <- t.counts.(min idx (b - 1)) + 1;
    t.total <- t.total + 1

  let count t = t.total
  let bucket_counts t = Array.copy t.counts

  let quantile t q =
    if t.total = 0 then invalid_arg "Histogram.quantile: empty";
    if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q out of range";
    let target = q *. float_of_int t.total in
    let b = Array.length t.counts in
    let width = (t.hi -. t.lo) /. float_of_int b in
    let rec scan i acc =
      if i >= b then t.hi
      else
        let acc' = acc +. float_of_int t.counts.(i) in
        if acc' >= target then t.lo +. ((float_of_int i +. 0.5) *. width)
        else scan (i + 1) acc'
    in
    scan 0 0.
end
