#!/bin/sh
# CI entry point: full build, the whole test suite, and one representative
# bench (fig4b reproduces the paper's headline warmup result) as a smoke
# test of the simulation + telemetry stack.
set -e
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- fig4b
