lib/layout/baselines.mli: C3 Cfg
