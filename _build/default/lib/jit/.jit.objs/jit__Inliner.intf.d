lib/jit/inliner.mli: Hhbc Jit_profile Vasm
