(** Shadow-stack replay: maps interpreter execution events onto JIT
    translations.

    The interpreter is the semantic executor; this module reconstructs what
    the machine would have been doing — which vasm block of which translation
    each bytecode block corresponds to, honouring inlining:

    - entering a callee that the enclosing translation inlined at that call
      site continues {e inside} the same translation (the inlined body's
      blocks);
    - entering anything else transfers to the callee's own translation (or to
      untranslated execution);
    - a method call whose receiver defeats the inline guard (actual callee
      differs from the speculated one) executes the slow-path block first —
      a tier-2 side exit invisible to tier-1 profiling.

    Consumers: {!Vasm_profile} (seeder instrumentation of optimized code,
    §V-A/§V-B) and {!Trace_adapter} (machine-model replay for Fig. 5/6). *)

type handler = {
  on_vblock : Vasm.Vfunc.t -> int -> unit;  (** executed vasm block *)
  on_varc : Vasm.Vfunc.t -> src:int -> dst:int -> unit;
      (** control arc between two vasm blocks of one translation *)
  on_xcall : caller:Hhbc.Instr.fid option -> callee:Hhbc.Instr.fid -> unit;
      (** translation-to-translation (non-inlined) call; [caller = None] for
          request entry or calls from untranslated code *)
  on_untranslated : Hhbc.Instr.fid -> int -> unit;
      (** a bytecode block ran without any translation *)
  on_prop : addr:int -> write:bool -> unit;  (** data access *)
}

val null_handler : handler

(** [probes repo ~lookup handler] builds interpreter probes implementing the
    mapping.  [lookup fid] returns the translation covering [fid], if any.
    [lookup] is consulted on every function entry, so changing its result
    mid-run (new translations appearing) is supported. *)
val probes :
  Hhbc.Repo.t -> lookup:(Hhbc.Instr.fid -> Vasm.Vfunc.t option) -> handler -> Interp.Probes.t
