lib/cluster/fleet.mli: Format Js_util Server Workload
