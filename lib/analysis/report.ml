(* Rendering for the [analyze] CLI subcommands: per-function dataflow facts
   plus diagnostics, as stable text or JSON.  Both forms are deterministic
   for a given repo (facts come from the deterministic analysis, diagnostics
   arrive sorted), so golden tests can pin the output. *)

module F = Hhbc.Func
module I = Hhbc.Instr

type func_row = {
  fid : int;
  name : string;
  n_blocks : int;
  n_reachable : int;
  n_cfg_edges : int;
  n_feasible_edges : int;
  n_dead_stores : int;
  n_const_facts : int;  (* pcs whose pushed value is a proven constant *)
  iterations : int;
  converged : bool;
}

let row repo (f : F.t) =
  let s = Dataflow.analyze repo f in
  let n_blocks = Array.length s.Dataflow.blocks in
  let n_reachable = Array.fold_left (fun n r -> if r then n + 1 else n) 0 s.Dataflow.reach in
  let n_cfg_edges =
    Array.fold_left (fun n (b : F.block) -> n + List.length b.F.succs) 0 s.Dataflow.blocks
  in
  let n_feasible_edges =
    Array.fold_left (fun n succs -> n + List.length succs) 0 s.Dataflow.feasible_succs
  in
  let n_dead_stores = Array.fold_left (fun n d -> if d then n + 1 else n) 0 s.Dataflow.dead_store in
  let n_const_facts =
    let n = ref 0 in
    Array.iter (function Dataflow.Absval.Const _ -> incr n | _ -> ()) s.Dataflow.pushed;
    !n
  in
  {
    fid = f.F.id;
    name = f.F.name;
    n_blocks;
    n_reachable;
    n_cfg_edges;
    n_feasible_edges;
    n_dead_stores;
    n_const_facts;
    iterations = s.Dataflow.iterations;
    converged = s.Dataflow.converged;
  }

let rows repo = Array.to_list (Array.map (row repo) repo.Hhbc.Repo.funcs)

let text repo ~diags =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Printf.bprintf b "f%-3d %-24s %3d blocks (%d reachable)  %3d edges (%d feasible)  %2d dead stores  %3d const facts  %s\n"
        r.fid r.name r.n_blocks r.n_reachable r.n_cfg_edges r.n_feasible_edges r.n_dead_stores
        r.n_const_facts
        (if r.converged then Printf.sprintf "converged in %d iterations" r.iterations
         else "DID NOT CONVERGE"))
    (rows repo);
  List.iter (fun d -> Buffer.add_string b (Diag.to_string d); Buffer.add_char b '\n') diags;
  let errors = List.length (Diag.errors diags) in
  let warnings = List.length diags - errors in
  Printf.bprintf b "analyzed %d functions: %d errors, %d warnings\n" (Hhbc.Repo.n_funcs repo)
    errors warnings;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json repo ~diags =
  let b = Buffer.create 2048 in
  Printf.bprintf b "{\n  \"functions\": [\n";
  let rs = rows repo in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    { \"fid\": %d, \"name\": \"%s\", \"blocks\": %d, \"reachable\": %d, \"cfg_edges\": %d, \"feasible_edges\": %d, \"dead_stores\": %d, \"const_facts\": %d, \"iterations\": %d, \"converged\": %b }%s\n"
        r.fid (json_escape r.name) r.n_blocks r.n_reachable r.n_cfg_edges r.n_feasible_edges
        r.n_dead_stores r.n_const_facts r.iterations r.converged
        (if i = List.length rs - 1 then "" else ","))
    rs;
  Printf.bprintf b "  ],\n  \"diagnostics\": [\n";
  List.iteri
    (fun i (d : Diag.t) ->
      Printf.bprintf b "    { \"severity\": \"%s\", \"code\": \"%s\"%s%s, \"message\": \"%s\" }%s\n"
        (match d.Diag.severity with Diag.Error -> "error" | Diag.Warning -> "warning")
        d.Diag.code
        (match d.Diag.fid with Some fid -> Printf.sprintf ", \"fid\": %d" fid | None -> "")
        (match d.Diag.pc with Some pc -> Printf.sprintf ", \"pc\": %d" pc | None -> "")
        (json_escape d.Diag.message)
        (if i = List.length diags - 1 then "" else ","))
    diags;
  let errors = List.length (Diag.errors diags) in
  Printf.bprintf b "  ],\n  \"errors\": %d,\n  \"warnings\": %d\n}\n" errors
    (List.length diags - errors);
  Buffer.contents b
