lib/minihack/pp.ml: Ast Buffer Float Format List String
